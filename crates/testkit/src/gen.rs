//! Generator combinators with integrated (rose-tree) shrinking.
//!
//! A [`Gen<T>`] turns a [`SimRng`] into a [`Shrinkable<T>`]: the generated
//! value plus a *lazy* list of shrink candidates, each itself shrinkable.
//! Because candidates are produced structurally alongside the value,
//! `map`, `flat_map` and the tuple/vector combinators compose shrinking
//! for free — there is no separate "strategy" machinery to keep in sync.
//!
//! Shrink candidate ordering is aggressive-first: the first child is the
//! smallest plausible value (the range origin, the empty suffix, the
//! first `one_of` alternative), later children move progressively closer
//! to the original. The runner's greedy walk (take the first failing
//! child, repeat) therefore converges in few evaluations.

use desim::SimRng;
use std::ops::Range;
use std::rc::Rc;

/// A generated value together with a lazy tree of smaller candidates.
pub struct Shrinkable<T> {
    pub value: T,
    children: Rc<dyn Fn() -> Vec<Shrinkable<T>>>,
}

impl<T: Clone> Clone for Shrinkable<T> {
    fn clone(&self) -> Self {
        Shrinkable {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: Clone + 'static> Shrinkable<T> {
    /// A value with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Shrinkable {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A value with lazily computed shrink candidates.
    pub fn with_children(value: T, children: impl Fn() -> Vec<Shrinkable<T>> + 'static) -> Self {
        Shrinkable {
            value,
            children: Rc::new(children),
        }
    }

    /// Materialize the immediate shrink candidates.
    pub fn children(&self) -> Vec<Shrinkable<T>> {
        (self.children)()
    }

    fn map_rc<U: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Shrinkable<U> {
        let value = f(&self.value);
        let kids = Rc::clone(&self.children);
        Shrinkable {
            value,
            children: Rc::new(move || kids().iter().map(|c| c.map_rc(Rc::clone(&f))).collect()),
        }
    }
}

/// A reusable, cloneable generator of shrinkable values.
pub struct Gen<T> {
    run: Rc<dyn Fn(&mut SimRng) -> Shrinkable<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: Clone + 'static> Gen<T> {
    pub fn new(f: impl Fn(&mut SimRng) -> Shrinkable<T> + 'static) -> Gen<T> {
        Gen { run: Rc::new(f) }
    }

    /// Draw one shrinkable value.
    pub fn sample(&self, rng: &mut SimRng) -> Shrinkable<T> {
        (self.run)(rng)
    }

    /// Transform generated values; shrinking maps through.
    pub fn map<U: Clone + 'static>(&self, f: impl Fn(&T) -> U + 'static) -> Gen<U> {
        let f: Rc<dyn Fn(&T) -> U> = Rc::new(f);
        let run = Rc::clone(&self.run);
        Gen::new(move |rng| run(rng).map_rc(Rc::clone(&f)))
    }

    /// Dependent generation: pick a follow-up generator from the value.
    /// Shrinking first shrinks the *input* (re-running the follow-up under
    /// a fixed sub-seed so the regenerated value stays comparable), then
    /// shrinks the output itself.
    pub fn flat_map<U: Clone + 'static>(&self, f: impl Fn(&T) -> Gen<U> + 'static) -> Gen<U> {
        let f: Rc<dyn Fn(&T) -> Gen<U>> = Rc::new(f);
        let run = Rc::clone(&self.run);
        Gen::new(move |rng| {
            let t = run(rng);
            let sub_seed = rng.next_u64();
            bind(t, Rc::clone(&f), sub_seed)
        })
    }
}

fn bind<T: Clone + 'static, U: Clone + 'static>(
    t: Shrinkable<T>,
    f: Rc<dyn Fn(&T) -> Gen<U>>,
    sub_seed: u64,
) -> Shrinkable<U> {
    let u = f(&t.value).sample(&mut SimRng::seed_from_u64(sub_seed));
    let u_children = Rc::clone(&u.children);
    Shrinkable {
        value: u.value,
        children: Rc::new(move || {
            let mut out: Vec<Shrinkable<U>> = t
                .children()
                .into_iter()
                .map(|tk| bind(tk, Rc::clone(&f), sub_seed))
                .collect();
            out.extend(u_children());
            out
        }),
    }
}

/// Always the same value; never shrinks.
pub fn just<T: Clone + 'static>(v: T) -> Gen<T> {
    Gen::new(move |_| Shrinkable::leaf(v.clone()))
}

fn int_shrinkable(lo: u64, v: u64) -> Shrinkable<u64> {
    Shrinkable::with_children(v, move || {
        // Candidates: the origin `lo` first, then binary steps back toward v.
        let mut out = Vec::new();
        let mut d = v - lo;
        while d > 0 {
            out.push(int_shrinkable(lo, v - d));
            d /= 2;
        }
        out
    })
}

/// Uniform integer in `[lo, hi)`; shrinks toward `lo`.
pub fn u64_in(r: Range<u64>) -> Gen<u64> {
    assert!(r.start < r.end, "u64_in: empty range");
    let (lo, hi) = (r.start, r.end);
    Gen::new(move |rng| int_shrinkable(lo, lo + rng.next_u64() % (hi - lo)))
}

/// Uniform `usize` in `[lo, hi)`; shrinks toward `lo`.
pub fn usize_in(r: Range<usize>) -> Gen<usize> {
    u64_in(r.start as u64..r.end as u64).map(|v| *v as usize)
}

/// Uniform `u32` in `[lo, hi)`; shrinks toward `lo`.
pub fn u32_in(r: Range<u32>) -> Gen<u32> {
    u64_in(u64::from(r.start)..u64::from(r.end)).map(|v| *v as u32)
}

/// Uniform `u8` in `[lo, hi)`; shrinks toward `lo`.
pub fn u8_in(r: Range<u8>) -> Gen<u8> {
    u64_in(u64::from(r.start)..u64::from(r.end)).map(|v| *v as u8)
}

fn f64_shrinkable(lo: f64, v: f64) -> Shrinkable<f64> {
    Shrinkable::with_children(v, move || {
        let mut out = Vec::new();
        if v > lo {
            out.push(f64_shrinkable(lo, lo));
            let mid = lo + (v - lo) / 2.0;
            // Stop bisecting once the step is negligible relative to v.
            if mid > lo && mid < v && (v - mid) > (v.abs() + 1.0) * 1e-9 {
                out.push(f64_shrinkable(lo, mid));
            }
        }
        out
    })
}

/// Uniform float in `[lo, hi)`; shrinks toward `lo` by bisection.
pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
    assert!(lo < hi, "f64_in: empty range");
    Gen::new(move |rng| f64_shrinkable(lo, rng.uniform(lo, hi)))
}

/// Fair coin; `true` shrinks to `false`.
pub fn bools() -> Gen<bool> {
    Gen::new(|rng| {
        if rng.chance(0.5) {
            Shrinkable::with_children(true, || vec![Shrinkable::leaf(false)])
        } else {
            Shrinkable::leaf(false)
        }
    })
}

fn vec_shrinkable<T: Clone + 'static>(items: Vec<Shrinkable<T>>, min: usize) -> Shrinkable<Vec<T>> {
    let value: Vec<T> = items.iter().map(|s| s.value.clone()).collect();
    Shrinkable::with_children(value, move || {
        let n = items.len();
        let mut out = Vec::new();
        if n > min {
            // Aggressive length cuts first: truncate to the minimum, then
            // drop the back half, then drop single elements.
            out.push(vec_shrinkable(items[..min].to_vec(), min));
            let half = (n / 2).max(min);
            if half < n && half > min {
                out.push(vec_shrinkable(items[..half].to_vec(), min));
            }
            for i in 0..n {
                let mut fewer = items.clone();
                fewer.remove(i);
                out.push(vec_shrinkable(fewer, min));
            }
        }
        // Then element-wise shrinks at the current length.
        for i in 0..n {
            for c in items[i].children() {
                let mut v2 = items.clone();
                v2[i] = c;
                out.push(vec_shrinkable(v2, min));
            }
        }
        out
    })
}

/// Vector with length uniform in `len` (half-open, as in `0..10`);
/// shrinks by dropping elements (not below `len.start`) and by shrinking
/// elements in place.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
    assert!(len.start < len.end, "vec_of: empty length range");
    let (min, max) = (len.start, len.end);
    Gen::new(move |rng| {
        let n = min + rng.index(max - min);
        let items: Vec<Shrinkable<T>> = (0..n).map(|_| elem.sample(rng)).collect();
        vec_shrinkable(items, min)
    })
}

/// Pick one of the listed values; shrinks toward earlier entries.
pub fn select<T: Clone + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "select: no items");
    usize_in(0..items.len()).map(move |i| items[*i].clone())
}

/// Pick one of the listed generators (the `prop_oneof` shape); shrinks
/// toward earlier alternatives, then within the chosen alternative.
pub fn one_of<T: Clone + 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "one_of: no generators");
    usize_in(0..gens.len()).flat_map(move |i| gens[*i].clone())
}

fn pair_shrinkable<A: Clone + 'static, B: Clone + 'static>(
    a: Shrinkable<A>,
    b: Shrinkable<B>,
) -> Shrinkable<(A, B)> {
    let value = (a.value.clone(), b.value.clone());
    Shrinkable::with_children(value, move || {
        let mut out = Vec::new();
        for ak in a.children() {
            out.push(pair_shrinkable(ak, b.clone()));
        }
        for bk in b.children() {
            out.push(pair_shrinkable(a.clone(), bk));
        }
        out
    })
}

/// Pair of independent generators; shrinks component-wise.
pub fn tuple2<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::new(move |rng| {
        let sa = a.sample(rng);
        let sb = b.sample(rng);
        pair_shrinkable(sa, sb)
    })
}

/// Triple of independent generators; shrinks component-wise.
pub fn tuple3<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    tuple2(tuple2(a, b), c).map(|v| (v.0 .0.clone(), v.0 .1.clone(), v.1.clone()))
}

/// Quadruple of independent generators; shrinks component-wise.
pub fn tuple4<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static, D: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
    d: Gen<D>,
) -> Gen<(A, B, C, D)> {
    tuple2(tuple2(a, b), tuple2(c, d))
        .map(|v| (v.0 .0.clone(), v.0 .1.clone(), v.1 .0.clone(), v.1 .1.clone()))
}

/// Five independent generators; shrinks component-wise.
pub fn tuple5<
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
    D: Clone + 'static,
    E: Clone + 'static,
>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
    d: Gen<D>,
    e: Gen<E>,
) -> Gen<(A, B, C, D, E)> {
    tuple2(tuple4(a, b, c, d), e).map(|v| {
        (
            v.0 .0.clone(),
            v.0 .1.clone(),
            v.0 .2.clone(),
            v.0 .3.clone(),
            v.1.clone(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(99)
    }

    #[test]
    fn ints_stay_in_range_and_shrink_to_origin() {
        let g = u64_in(10..50);
        let mut r = rng();
        for _ in 0..200 {
            let s = g.sample(&mut r);
            assert!((10..50).contains(&s.value));
            if s.value > 10 {
                assert_eq!(s.children()[0].value, 10, "first candidate is the origin");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = vec_of(u64_in(0..1000), 0..20);
        let a: Vec<Vec<u64>> = {
            let mut r = rng();
            (0..10).map(|_| g.sample(&mut r).value).collect()
        };
        let b: Vec<Vec<u64>> = {
            let mut r = rng();
            (0..10).map(|_| g.sample(&mut r).value).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn vec_shrinks_respect_min_len() {
        let g = vec_of(u64_in(0..10), 2..8);
        let mut r = rng();
        for _ in 0..50 {
            let s = g.sample(&mut r);
            for c in s.children() {
                assert!(c.value.len() >= 2, "shrunk below min: {:?}", c.value);
            }
        }
    }

    #[test]
    fn map_transports_shrinks() {
        let g = u64_in(0..100).map(|v| v * 2);
        let mut r = rng();
        let s = g.sample(&mut r);
        assert_eq!(s.value % 2, 0);
        for c in s.children() {
            assert_eq!(c.value % 2, 0);
            assert!(c.value < s.value);
        }
    }

    #[test]
    fn flat_map_regenerates_under_fixed_subseed() {
        // len -> vector of that length: shrinking the length must yield a
        // vector of the shrunk length (regenerated deterministically).
        let g = usize_in(1..6).flat_map(|n| vec_of(u64_in(0..10), *n..*n + 1));
        let mut r = rng();
        let s = g.sample(&mut r);
        for c in s.children() {
            assert!(c.value.len() <= s.value.len());
        }
    }

    #[test]
    fn one_of_covers_all_alternatives() {
        let g = one_of(vec![just(1u64), just(2), just(3)]);
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[g.sample(&mut r).value as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_shrink_componentwise() {
        let g = tuple3(u64_in(0..10), u64_in(0..10), u64_in(0..10));
        let mut r = rng();
        let s = g.sample(&mut r);
        let (a, b, c) = s.value;
        for k in s.children() {
            let changed = [k.value.0 != a, k.value.1 != b, k.value.2 != c]
                .iter()
                .filter(|&&x| x)
                .count();
            assert_eq!(changed, 1, "exactly one component shrinks per step");
        }
    }
}
