//! `testkit` — the workspace's own test toolkit, so the build stays
//! hermetic (no registry dependencies, dev or otherwise).
//!
//! Three pieces:
//!
//! * [`gen`] + [`runner`] + the [`property!`] macro — a property-testing
//!   mini-framework in the proptest style: generator combinators with
//!   *integrated shrinking* (every generated value carries a lazy tree of
//!   smaller candidates, so `map`/`flat_map` compose without separate
//!   shrinker plumbing), a runner with a configurable case count, and
//!   greedy shrinking that prints the minimal counterexample plus the
//!   seed needed to replay it.
//! * [`golden`] — golden-file regression: compare a string against a
//!   checked-in snapshot, re-bless with `TESTKIT_BLESS=1`, and show a
//!   unified diff on mismatch.
//! * [`bench`] — a micro-benchmark harness (warmup + N timed iterations,
//!   median/p95/min) emitting one JSON line per benchmark, used by the
//!   `cargo bench` targets in place of criterion.
//!
//! Randomness comes from [`desim::SimRng`], the same deterministic
//! xoshiro256++ stream the simulator uses, so a property failure replays
//! bit-for-bit from its printed seed.
//!
//! # Environment knobs
//!
//! | variable | effect |
//! |---|---|
//! | `TESTKIT_CASES` | override the per-property case count |
//! | `TESTKIT_SEED` | override the per-property base seed (for replay) |
//! | `TESTKIT_BLESS=1` | rewrite golden files instead of comparing |
//! | `TESTKIT_BENCH_ITERS` / `TESTKIT_BENCH_WARMUP` | bench iteration counts |

pub mod bench;
pub mod gen;
pub mod golden;
pub mod runner;

pub use gen::{
    bools, f64_in, just, one_of, select, tuple2, tuple3, tuple4, tuple5, u32_in, u64_in, u8_in,
    usize_in, vec_of, Gen, Shrinkable,
};
pub use golden::{check_golden, check_scenario_golden, unified_diff};
pub use runner::run_property;
