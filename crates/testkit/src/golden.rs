//! Golden-file regression: compare a rendered string against a
//! checked-in snapshot.
//!
//! Contract: the producing pipeline must be deterministic (fixed seed,
//! no wall-clock), so the snapshot only changes when the model changes.
//! On mismatch the test fails with a unified diff; if the change is
//! intended, re-bless with `TESTKIT_BLESS=1 cargo test ...` and commit
//! the updated file.

use std::fs;
use std::path::Path;

/// Compare `actual` against the golden file at `path` (conventionally
/// `concat!(env!("CARGO_MANIFEST_DIR"), "/golden/<name>")`).
///
/// * `TESTKIT_BLESS=1` — (re)write the file instead of comparing.
/// * missing file — fail with instructions to bless.
/// * mismatch — fail with a unified diff.
pub fn check_golden(path: impl AsRef<Path>, actual: &str) {
    check_golden_labeled(None, path.as_ref(), actual);
}

/// [`check_golden`] for scenario-driven goldens: failure and bless
/// messages name the *scenario* that produced the bytes, not just the
/// file path, so a stale-golden diff says which `scenarios/*.json` to
/// re-run (or re-bless) rather than which test binary tripped.
pub fn check_scenario_golden(scenario: &str, path: impl AsRef<Path>, actual: &str) {
    check_golden_labeled(Some(scenario), path.as_ref(), actual);
}

fn check_golden_labeled(scenario: Option<&str>, path: &Path, actual: &str) {
    // Normalize to exactly one trailing newline so editors/POSIX tools
    // don't introduce spurious diffs.
    let mut actual = actual.trim_end_matches('\n').to_string();
    actual.push('\n');
    let what = match scenario {
        Some(s) => format!("scenario \"{s}\" ({})", path.display()),
        None => path.display().to_string(),
    };

    if std::env::var("TESTKIT_BLESS").as_deref() == Ok("1") {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        }
        fs::write(path, &actual).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("testkit: blessed {what}");
        return;
    }

    let expected = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(_) => panic!(
            "golden file for {what} is missing — run the test once with TESTKIT_BLESS=1 to \
             create it, inspect the result, and check it in"
        ),
    };
    if expected != actual {
        panic!(
            "golden mismatch for {what}\n{}\nIf this change is intended, re-bless with \
             TESTKIT_BLESS=1 and commit the updated file.",
            unified_diff(&expected, &actual, 3)
        );
    }
}

/// A minimal unified diff (`-` expected, `+` actual) with `context`
/// lines of context, via longest-common-subsequence alignment.
pub fn unified_diff(old: &str, new: &str, context: usize) -> String {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let (n, m) = (a.len(), b.len());

    // LCS length table, dp[i][j] = LCS of a[i..] and b[j..].
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if a[i] == b[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }

    // Walk the table into an edit script: (tag, old line no, new line no, text).
    let mut ops: Vec<(char, usize, usize, &str)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push((' ', i, j, a[i]));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            ops.push(('-', i, j, a[i]));
            i += 1;
        } else {
            ops.push(('+', i, j, b[j]));
            j += 1;
        }
    }
    while i < n {
        ops.push(('-', i, j, a[i]));
        i += 1;
    }
    while j < m {
        ops.push(('+', i, j, b[j]));
        j += 1;
    }

    // Group changed ops into hunks, keeping `context` lines around each
    // and merging hunks whose context would overlap.
    let changed: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| op.0 != ' ')
        .map(|(k, _)| k)
        .collect();
    if changed.is_empty() {
        return String::from("(no differences)");
    }
    let mut hunks: Vec<(usize, usize)> = Vec::new();
    for &k in &changed {
        let lo = k.saturating_sub(context);
        let hi = (k + context + 1).min(ops.len());
        match hunks.last_mut() {
            Some((_, end)) if lo <= *end => *end = hi,
            _ => hunks.push((lo, hi)),
        }
    }

    let mut out = String::new();
    for (lo, hi) in hunks {
        let old_start = ops[lo].1 + 1;
        let new_start = ops[lo].2 + 1;
        let old_count = ops[lo..hi].iter().filter(|o| o.0 != '+').count();
        let new_count = ops[lo..hi].iter().filter(|o| o.0 != '-').count();
        out.push_str(&format!(
            "@@ -{old_start},{old_count} +{new_start},{new_count} @@\n"
        ));
        for op in &ops[lo..hi] {
            out.push(op.0);
            out.push_str(op.3);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_have_no_diff() {
        assert_eq!(unified_diff("a\nb\n", "a\nb\n", 3), "(no differences)");
    }

    #[test]
    fn diff_marks_changed_lines() {
        let old = "one\ntwo\nthree\nfour\n";
        let new = "one\n2\nthree\nfour\n";
        let d = unified_diff(old, new, 1);
        assert!(d.contains("-two\n"), "{d}");
        assert!(d.contains("+2\n"), "{d}");
        assert!(d.contains(" one\n"), "context kept: {d}");
        assert!(d.contains("@@ -1,3 +1,3 @@"), "{d}");
    }

    #[test]
    fn distant_changes_get_separate_hunks() {
        let old: String = (0..40).map(|i| format!("line{i}\n")).collect();
        let new = old.replace("line3\n", "LINE3\n").replace("line33\n", "LINE33\n");
        let d = unified_diff(&old, &new, 2);
        assert_eq!(d.matches("@@ ").count(), 2, "{d}");
    }

    #[test]
    fn golden_bless_and_match_cycle() {
        let dir = std::env::temp_dir().join(format!("testkit-golden-{}", std::process::id()));
        let path = dir.join("sample.json");
        // Bless (env vars are process-global; this test owns this key in
        // this binary — serialize with other golden tests if ever added).
        std::env::set_var("TESTKIT_BLESS", "1");
        check_golden(&path, "{\"x\": 1}");
        std::env::remove_var("TESTKIT_BLESS");
        // Match passes; the normalizer tolerates a missing trailing newline.
        check_golden(&path, "{\"x\": 1}\n");
        // Mismatch panics with a diff.
        let err = std::panic::catch_unwind(|| check_golden(&path, "{\"x\": 2}")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("golden mismatch"), "{msg}");
        assert!(msg.contains("-{\"x\": 1}"), "{msg}");
        assert!(msg.contains("+{\"x\": 2}"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
