//! Property runner: deterministic case generation, greedy shrinking, and
//! the [`property!`] macro that mimics the proptest surface the suites
//! were originally written against.
//!
//! Each property gets a stable base seed (FNV-1a of its full test path),
//! overridable via `TESTKIT_SEED`; case `i` draws from `base.fork(i)`, so
//! one failing case replays exactly from the printed seed without
//! re-running the cases before it.

use crate::gen::{Gen, Shrinkable};
use desim::SimRng;
use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Sentinel error string that discards a case instead of failing it
/// (the `prop_assume!` mechanism).
pub const DISCARD: &str = "__testkit_discard__";

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}
static HOOK: Once = Once::new();

/// Install (once) a panic hook that suppresses backtrace spew while the
/// runner probes candidate inputs; forwards to the previous hook
/// otherwise.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

enum Outcome {
    Pass,
    Discard,
    Fail(String),
}

fn eval<T, F: Fn(&T) -> Result<(), String>>(prop: &F, value: &T) -> Outcome {
    QUIET.with(|q| q.set(true));
    let r = catch_unwind(AssertUnwindSafe(|| prop(value)));
    QUIET.with(|q| q.set(false));
    match r {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(m)) if m == DISCARD => Outcome::Discard,
        Ok(Err(m)) => Outcome::Fail(m),
        Err(e) => Outcome::Fail(format!("panicked: {}", panic_message(e))),
    }
}

/// FNV-1a of the test name: a stable per-property default seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|s| s.parse().ok())
}

/// Cap on property evaluations spent shrinking one failure.
const MAX_SHRINK_EVALS: u32 = 10_000;

fn shrink<T: Clone + 'static, F: Fn(&T) -> Result<(), String>>(
    root: Shrinkable<T>,
    first_msg: String,
    prop: &F,
) -> (T, String, u32, u32) {
    let mut current = root;
    let mut msg = first_msg;
    let mut steps = 0u32;
    let mut evals = 0u32;
    'outer: loop {
        for child in current.children() {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            evals += 1;
            if let Outcome::Fail(m) = eval(prop, &child.value) {
                current = child;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current.value, msg, steps, evals)
}

/// Run `prop` against `cases` values drawn from `gen`. On failure,
/// greedily shrink and panic with the minimal counterexample and the
/// environment needed to replay it.
pub fn run_property<T: Clone + Debug + 'static>(
    name: &str,
    default_cases: u32,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    install_quiet_hook();
    let cases = env_u64("TESTKIT_CASES").map_or(default_cases, |v| v as u32).max(1);
    let seed = env_u64("TESTKIT_SEED").unwrap_or_else(|| name_seed(name));
    let base = SimRng::seed_from_u64(seed);
    let mut discards = 0u64;
    for case in 0..cases {
        let mut rng = base.fork(u64::from(case));
        let tree = gen.sample(&mut rng);
        match eval(&prop, &tree.value) {
            Outcome::Pass => {}
            Outcome::Discard => discards += 1,
            Outcome::Fail(first_msg) => {
                let original = tree.value.clone();
                let (min, msg, steps, evals) = shrink(tree, first_msg.clone(), &prop);
                panic!(
                    "\nproperty `{name}` failed on case {case_no}/{cases} (base seed {seed})\n\
                     original input: {original:?}\n\
                     original failure: {first_msg}\n\
                     minimal counterexample ({steps} shrink steps, {evals} evaluations):\n    \
                     {min:?}\n\
                     failure at minimum: {msg}\n\
                     replay: TESTKIT_SEED={seed} TESTKIT_CASES={cases} cargo test {short}\n",
                    case_no = case + 1,
                    short = name.rsplit("::").next().unwrap_or(name),
                );
            }
        }
    }
    if discards > u64::from(cases) * 4 {
        panic!("property `{name}`: too many discarded cases ({discards} for {cases} cases) — loosen prop_assume! conditions");
    }
}

/// Declare property tests in the proptest style:
///
/// ```ignore
/// testkit::property! {
///     #[cases(128)]
///     fn sum_is_commutative(a in u64_in(0..100), b in u64_in(0..100)) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each `fn` becomes a `#[test]`. The body may use `prop_assert!`,
/// `prop_assert_eq!`, `prop_assume!`, or plain `assert!`/panics. Up to
/// four `name in gen` bindings are supported. `#[cases(N)]` defaults
/// to 64.
#[macro_export]
macro_rules! property {
    () => {};
    (
        $(#[doc = $doc:expr])*
        $(#[cases($n:expr)])?
        fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            #[allow(unused_variables, unused_mut)]
            let default_cases: u32 = 64;
            $(let default_cases: u32 = $n;)?
            let gen = $crate::zip_gens!($($gen),+);
            $crate::runner::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                default_cases,
                &gen,
                |__vals| {
                    #[allow(unreachable_code, clippy::redundant_closure_call)]
                    let __r: ::std::result::Result<(), String> =
                        $crate::apply_args!(__vals, ($($arg),+), $body);
                    __r
                },
            );
        }
        $crate::property!{ $($rest)* }
    };
}

/// Combine 1–4 generators into one (tuple) generator. Internal to
/// [`property!`].
#[macro_export]
macro_rules! zip_gens {
    ($g:expr) => { $g };
    ($g1:expr, $g2:expr) => { $crate::gen::tuple2($g1, $g2) };
    ($g1:expr, $g2:expr, $g3:expr) => { $crate::gen::tuple3($g1, $g2, $g3) };
    ($g1:expr, $g2:expr, $g3:expr, $g4:expr) => { $crate::gen::tuple4($g1, $g2, $g3, $g4) };
    ($g1:expr, $g2:expr, $g3:expr, $g4:expr, $g5:expr) => {
        $crate::gen::tuple5($g1, $g2, $g3, $g4, $g5)
    };
}

/// Generic applicators: passing the cloned tuple fields *alongside* the
/// body closure pins the closure's parameter types to the generator's
/// output type, so property bodies need no annotations. Internal to
/// [`property!`].
pub fn apply1<A, R>(a: A, f: impl FnOnce(A) -> R) -> R {
    f(a)
}
pub fn apply2<A, B, R>(a: A, b: B, f: impl FnOnce(A, B) -> R) -> R {
    f(a, b)
}
pub fn apply3<A, B, C, R>(a: A, b: B, c: C, f: impl FnOnce(A, B, C) -> R) -> R {
    f(a, b, c)
}
pub fn apply4<A, B, C, D, R>(a: A, b: B, c: C, d: D, f: impl FnOnce(A, B, C, D) -> R) -> R {
    f(a, b, c, d)
}
#[allow(clippy::many_single_char_names)]
pub fn apply5<A, B, C, D, E, R>(
    a: A,
    b: B,
    c: C,
    d: D,
    e: E,
    f: impl FnOnce(A, B, C, D, E) -> R,
) -> R {
    f(a, b, c, d, e)
}

/// Invoke the property body with cloned tuple fields via the `applyN`
/// helpers. Internal to [`property!`].
#[macro_export]
macro_rules! apply_args {
    ($v:ident, ($a:ident), $body:block) => {
        $crate::runner::apply1($v.clone(), |$a| {
            $body
            ::std::result::Result::Ok(())
        })
    };
    ($v:ident, ($a:ident, $b:ident), $body:block) => {
        $crate::runner::apply2($v.0.clone(), $v.1.clone(), |$a, $b| {
            $body
            ::std::result::Result::Ok(())
        })
    };
    ($v:ident, ($a:ident, $b:ident, $c:ident), $body:block) => {
        $crate::runner::apply3($v.0.clone(), $v.1.clone(), $v.2.clone(), |$a, $b, $c| {
            $body
            ::std::result::Result::Ok(())
        })
    };
    ($v:ident, ($a:ident, $b:ident, $c:ident, $d:ident), $body:block) => {
        $crate::runner::apply4(
            $v.0.clone(),
            $v.1.clone(),
            $v.2.clone(),
            $v.3.clone(),
            |$a, $b, $c, $d| {
                $body
                ::std::result::Result::Ok(())
            },
        )
    };
    ($v:ident, ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident), $body:block) => {
        $crate::runner::apply5(
            $v.0.clone(),
            $v.1.clone(),
            $v.2.clone(),
            $v.3.clone(),
            $v.4.clone(),
            |$a, $b, $c, $d, $e| {
                $body
                ::std::result::Result::Ok(())
            },
        )
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}` ({}:{})", __l, __r, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if __l != __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}`: {}", __l, __r, format!($($fmt)+)
            ));
        }
    }};
}

/// Discard the current case (it counts as neither pass nor failure)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::runner::DISCARD.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::gen::{u64_in, vec_of};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn passing_property_runs_clean() {
        super::run_property("t::pass", 64, &u64_in(0..100), |v| {
            if *v < 100 {
                Ok(())
            } else {
                Err("out of range".into())
            }
        });
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // "No vector sums past 50" — element candidates include v-1, so
        // greedy shrinking must land exactly on a sum of 51.
        let gen = vec_of(u64_in(0..200), 0..20);
        let err = catch_unwind(AssertUnwindSafe(|| {
            super::run_property("t::shrinks", 64, &gen, |v| {
                if v.iter().sum::<u64>() <= 50 {
                    Ok(())
                } else {
                    Err(format!("sum {} > 50", v.iter().sum::<u64>()))
                }
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("minimal counterexample"), "{msg}");
        assert!(
            msg.contains("failure at minimum: sum 51 > 50"),
            "expected the shrunk sum to be exactly 51: {msg}"
        );
        assert!(msg.contains("TESTKIT_SEED="), "replay line missing: {msg}");
    }

    #[test]
    fn panicking_bodies_are_caught_and_shrunk() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            super::run_property("t::panics", 64, &u64_in(0..1000), |v| {
                assert!(*v < 10, "boom at {v}");
                Ok(())
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("panicked"), "{msg}");
        // Minimal failing value for `v < 10` is exactly 10.
        assert!(msg.contains("\n    10"), "expected 10 as the minimum: {msg}");
    }

    #[test]
    fn failures_replay_from_printed_seed() {
        let gen = u64_in(0..1_000_000);
        let prop = |v: &u64| {
            if *v % 7 != 0 {
                Ok(())
            } else {
                Err("divisible by 7".into())
            }
        };
        let run = || {
            catch_unwind(AssertUnwindSafe(|| {
                super::run_property("t::replay", 256, &gen, prop);
            }))
            .unwrap_err()
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.downcast_ref::<String>().unwrap(),
            b.downcast_ref::<String>().unwrap(),
            "same seed, same failure report"
        );
    }
}
