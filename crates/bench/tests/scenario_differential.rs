//! Differential tests: each legacy `repro` study path (cluster / faults /
//! serve) against its checked-in `scenarios/*.json` equivalent. The
//! scenario runner must reproduce the legacy entry points' reports
//! **byte-identically**, at `--jobs 1` and `--jobs 4` — this is the
//! contract that lets the scenario harness replace the per-feature
//! plumbing without invalidating a single golden.

use scheduler::policy::FifoFirstFit;
use scheduler::{
    paper_fault_plan, run_scenario, seeded_pai_mix, trace, ClusterSim, ProbeCache, Scenario,
    SchedulerConfig, SloAwarePack,
};
use std::path::PathBuf;

fn load(name: &str) -> Scenario {
    let path = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios")).join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Scenario::from_json_str(&text).unwrap()
}

/// Canonical scenario bytes at a given worker count.
fn scenario_bytes(sc: &Scenario, jobs: usize) -> String {
    let mut cache = ProbeCache::new(sc.config.probe_iters);
    run_scenario(sc, jobs, &mut cache)
        .unwrap_or_else(|e| panic!("{}: {e}", sc.name))
        .canonical_json_string()
}

fn assert_matches_legacy(scenario_file: &str, legacy: String) {
    let sc = load(scenario_file);
    assert_eq!(
        scenario_bytes(&sc, 1),
        legacy,
        "{scenario_file} at --jobs 1 must match the legacy path byte-for-byte"
    );
    assert_eq!(
        scenario_bytes(&sc, 4),
        legacy,
        "{scenario_file} at --jobs 4 must match the legacy path byte-for-byte"
    );
}

/// `repro cluster`'s pinned replay (20-job two-tenant trace under FIFO
/// first-fit) == `scenarios/cluster_fifo.json`.
#[test]
fn cluster_scenario_matches_legacy_subcommand() {
    let legacy = ClusterSim::new(
        trace::seeded_two_tenant(20, 0xC10D),
        Box::new(FifoFirstFit),
        SchedulerConfig::default(),
    )
    .unwrap()
    .run()
    .unwrap()
    .to_json_string();
    assert_matches_legacy("cluster_fifo.json", legacy);
}

/// `repro faults`' pinned replay (same trace + the 3-event paper fault
/// plan) == `scenarios/cluster_faults.json`, recovery block included.
#[test]
fn faults_scenario_matches_legacy_subcommand() {
    let legacy = ClusterSim::new(
        trace::seeded_two_tenant(20, 0xC10D),
        Box::new(FifoFirstFit),
        SchedulerConfig::default(),
    )
    .unwrap()
    .with_faults(paper_fault_plan())
    .unwrap()
    .run()
    .unwrap()
    .to_json_string();
    assert!(legacy.contains("\"recovery\""), "legacy faulty replay carries recovery metrics");
    assert_matches_legacy("cluster_faults.json", legacy);
}

/// `repro serve`'s pinned replay (16-job + 8-service PAI mix under
/// slo-aware-pack) == `scenarios/cluster_serve.json`, serve block included.
#[test]
fn serve_scenario_matches_legacy_subcommand() {
    let legacy = ClusterSim::new_mixed(
        seeded_pai_mix(16, 8, 0xC10D),
        Box::new(SloAwarePack),
        SchedulerConfig::default(),
    )
    .unwrap()
    .run()
    .unwrap()
    .to_json_string();
    assert!(legacy.contains("\"serve\""), "legacy mixed replay carries serve metrics");
    assert_matches_legacy("cluster_serve.json", legacy);
}
