//! Golden-table regression tests: the paper's headline tables and one
//! full (scaled) run report are rendered to JSON and compared against
//! checked-in snapshots under `crates/bench/golden/`.
//!
//! The producing pipelines are fully deterministic (fixed seed, discrete
//! event simulation, no wall-clock), so the snapshots change only when
//! the model changes. When a change is intended:
//!
//! ```text
//! TESTKIT_BLESS=1 cargo test -p bench --test golden_tables
//! git diff crates/bench/golden/   # review, then commit
//! ```

use bench::experiments::{table2_measured, table4_measured};
use composable_core::runner::{run, ExperimentOpts};
use composable_core::HostConfig;
use desim::json::Value;
use dlmodels::Benchmark;
use scheduler::policy::FifoFirstFit;
use scheduler::{
    paper_fault_plan, seeded_pai_mix, trace, ClusterSim, SchedulerConfig, SloAwarePack,
};
use testkit::check_golden;

fn golden(name: &str) -> String {
    format!("{}/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Table II: per-benchmark parameter counts and depths.
#[test]
fn golden_table2() {
    let rows: Vec<Value> = table2_measured()
        .into_iter()
        .map(|(label, params, derived, reported)| {
            Value::obj(vec![
                ("benchmark", Value::str(label)),
                ("params", Value::from_u64(params)),
                ("derived_depth", Value::from_u64(u64::from(derived))),
                ("reported_depth", Value::from_u64(u64::from(reported))),
            ])
        })
        .collect();
    check_golden(golden("table2.json"), &Value::Arr(rows).emit_pretty());
}

/// Table IV: the three GPU-pair classes probed on the hybrid composition.
#[test]
fn golden_table4() {
    let rows: Vec<Value> = table4_measured()
        .into_iter()
        .map(|(pair, p2p)| {
            Value::obj(vec![
                ("pair", Value::str(pair)),
                ("latency_ns", Value::from_u64(p2p.latency.as_nanos())),
                ("unidir_gbps", Value::Num(p2p.unidir_bandwidth / 1e9)),
                ("bidir_gbps", Value::Num(p2p.bidir_bandwidth / 1e9)),
            ])
        })
        .collect();
    check_golden(golden("table4.json"), &Value::Arr(rows).emit_pretty());
}

/// The `repro cluster` trace (20 jobs, two tenants, seed 0xC10D) replayed
/// under FIFO first-fit: freezes the scheduler's entire report surface —
/// per-job lifecycles, placement spans, utilization, fairness, audit
/// volume — against drift in the trace generator, the probe pricing, or
/// the event loop.
#[test]
fn golden_cluster_fifo() {
    let report = ClusterSim::new(
        trace::seeded_two_tenant(20, 0xC10D),
        Box::new(FifoFirstFit),
        SchedulerConfig::default(),
    )
    .expect("valid trace")
    .run()
    .expect("trace drains");
    check_golden(golden("cluster_fifo.json"), &report.to_json_string());
}

/// The same seeded 20-job trace replayed under FIFO first-fit with the
/// pinned 3-event `paper_fault_plan` injected: freezes the fault path
/// end to end — strike/heal ordering, BMC thermal evacuation, displaced
/// re-placement, checkpoint rollback, degraded probe pricing, and the
/// serialized recovery-metrics block.
#[test]
fn golden_cluster_faults() {
    let report = ClusterSim::new(
        trace::seeded_two_tenant(20, 0xC10D),
        Box::new(FifoFirstFit),
        SchedulerConfig::default(),
    )
    .expect("valid trace")
    .with_faults(paper_fault_plan())
    .expect("valid plan")
    .run()
    .expect("faulty trace drains");
    let recovery = report.recovery.as_ref().expect("recovery block present");
    assert!(recovery.evacuations > 0, "the pinned plan must displace jobs");
    check_golden(golden("cluster_faults.json"), &report.to_json_string());
}

/// The `repro serve` mixed trace (16 training jobs + 8 latency-SLO
/// services, seed 0xC10D) replayed under slo-aware-pack: freezes the
/// serving subsystem's whole report surface — per-service SLO attainment,
/// latency percentiles, replica GPU-seconds, autoscale/failover counts —
/// alongside the training-side metrics it is co-scheduled with.
#[test]
fn golden_cluster_serve() {
    let report = ClusterSim::new_mixed(
        seeded_pai_mix(16, 8, 0xC10D),
        Box::new(SloAwarePack),
        SchedulerConfig::default(),
    )
    .expect("valid mixed trace")
    .run()
    .expect("mixed trace drains");
    let serve = report.serve.as_ref().expect("serve block present");
    assert!(serve.attainment >= 0.95, "pack must meet SLOs on the pinned mix");
    check_golden(golden("cluster_serve.json"), &report.to_json_string());
}

/// One full (scaled) MobileNetV2 run on localGPUs under a pinned seed:
/// freezes the entire report surface — iteration timing, utilizations,
/// traffic — against accidental model drift.
#[test]
fn golden_quick_run_mobilenet() {
    let mut opts = ExperimentOpts::scaled(4).without_checkpoints();
    opts.seed = 7;
    let r = run(Benchmark::MobileNetV2, HostConfig::LocalGpus, &opts).unwrap();
    let pretty = Value::parse(&r.to_json_string()).unwrap().emit_pretty();
    check_golden(golden("quick_run_mobilenet.json"), &pretty);
}
