//! Scenario-driven golden regression: every pinned study is a checked-in
//! `scenarios/*.json` whose canonical report bytes are frozen under
//! `crates/bench/golden/` — the same files the legacy per-subcommand
//! golden tests pinned, proving the declarative harness subsumes the old
//! plumbing. Failures name the *scenario* (via
//! [`testkit::check_scenario_golden`]), so a stale golden says which spec
//! to re-run, not which test binary tripped.

use scheduler::{run_scenario, ProbeCache, Scenario};
use std::path::PathBuf;
use testkit::check_scenario_golden;

fn scenario_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios"))
}

fn golden(name: &str) -> String {
    format!("{}/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn load(name: &str) -> Scenario {
    let path = scenario_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Scenario::from_json_str(&text)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

/// The pinned studies, each as (scenario file, golden file). One table,
/// one guard loop — adding a pinned study is adding a row.
const PINNED: [(&str, &str); 6] = [
    ("cluster_fifo.json", "cluster_fifo.json"),
    ("cluster_faults.json", "cluster_faults.json"),
    ("cluster_serve.json", "cluster_serve.json"),
    ("cluster_scale32.json", "cluster_scale32.json"),
    // The production-scale replay workload (10k jobs + 60 services on
    // 128 GPUs, summary metrics) that the replay_scale bench times; its
    // summary golden pins the *semantics* of the optimized engine so a
    // perf regression fix can never silently change the answer.
    ("pai_magnitude.json", "pai_magnitude.json"),
    // The preemption study the migrate bench measures: checkpoint
    // preemption + migration defrag on a contended two-chassis mix. Its
    // golden pins the priority engine's decisions — who got preempted,
    // who migrated, and the work-loss ledger.
    ("cluster_priority.json", "cluster_priority.json"),
];

/// Every pinned scenario's canonical output still matches its golden —
/// byte-identical to the snapshots the legacy `golden_tables` tests
/// froze, which is the acceptance bar for the harness subsuming the
/// per-feature plumbing.
#[test]
fn pinned_scenarios_match_their_goldens() {
    for (scenario_file, golden_file) in PINNED {
        let sc = load(scenario_file);
        let mut cache = ProbeCache::new(sc.config.probe_iters);
        let report = run_scenario(&sc, 2, &mut cache)
            .unwrap_or_else(|e| panic!("{scenario_file}: {e}"));
        check_scenario_golden(&sc.name, golden(golden_file), &report.canonical_json_string());
    }
}

/// Every checked-in scenario file parses, validates, and is stored in
/// canonical form (emit(parse(text)) == text), so `git diff` on a
/// scenario edit is always minimal and the property suite's byte
/// round-trip covers exactly what is on disk.
#[test]
fn checked_in_scenarios_are_valid_and_canonical() {
    let dir = scenario_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 5, "the pinned scenario set is checked in");
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let sc = Scenario::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        sc.validate()
            .unwrap_or_else(|e| panic!("{} does not validate: {e}", path.display()));
        assert_eq!(
            sc.to_json_string(),
            text,
            "{} is not in canonical form — re-emit it with Scenario::to_json_string",
            path.display()
        );
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert_eq!(sc.name, stem, "{}: scenario name matches its file name", path.display());
    }
}
