//! The experiment implementations, one per table/figure.

use composable_core::runner::{self, ExperimentOpts};
use composable_core::HostConfig;
use dlmodels::{Benchmark, Precision};
use fabric::microbench::{p2p_probe, P2pResult};
use training::{RunReport, Strategy};

/// How much to scale the runs down from the paper's full epochs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Iterations per epoch.
    pub iters: u64,
    /// Epochs (`None` = the paper's per-benchmark epoch counts).
    pub epochs: Option<u32>,
    /// Keep epoch-end checkpointing.
    pub checkpoints: bool,
}

impl Scale {
    /// Fast runs for tests and Criterion (steady-state behavior only).
    pub fn quick() -> Scale {
        Scale {
            iters: 10,
            epochs: Some(2),
            checkpoints: false,
        }
    }

    /// The default for regenerating the figures: enough iterations that
    /// epoch-boundary effects have realistic weight, full epoch counts.
    pub fn standard() -> Scale {
        Scale {
            iters: 60,
            epochs: None,
            checkpoints: true,
        }
    }

    pub fn opts(&self) -> ExperimentOpts {
        let mut o = ExperimentOpts {
            iters_per_epoch: Some(self.iters),
            epochs: self.epochs,
            ..ExperimentOpts::default()
        };
        o.checkpoint = self.checkpoints;
        o
    }
}

/// One cell of the benchmark × GPU-configuration grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    pub benchmark: Benchmark,
    pub config: HostConfig,
    pub report: RunReport,
}

/// Run all five benchmarks on the three GPU configurations (in parallel);
/// the shared input of Figs 10–14.
pub fn grid(scale: Scale) -> Vec<GridCell> {
    runner::gpu_config_grid(&scale.opts())
        .into_iter()
        .map(|(benchmark, config, report)| GridCell {
            benchmark,
            config,
            report,
        })
        .collect()
}

/// Table II (measured): `(label, params, derived depth, reported depth)`.
pub fn table2_measured() -> Vec<(String, u64, u32, u32)> {
    dlmodels::paper_benchmarks()
        .into_iter()
        .map(|m| {
            (
                m.benchmark.label().to_string(),
                m.param_count(),
                m.derived_depth(),
                m.reported_depth,
            )
        })
        .collect()
}

/// Table IV (measured): probe the three GPU-pair classes on the hybrid
/// composition (which contains both local and falcon GPUs).
pub fn table4_measured() -> [(&'static str, P2pResult); 3] {
    let composed = composable_core::build_config(HostConfig::HybridGpus);
    let topo = &composed.topology;
    let g = &composed.cluster.gpus;
    // Local pair 0-3 is a 2-brick NVLink edge (the class the paper probes).
    let ll = p2p_probe(topo, g[0].core, g[3].core, 8e9);
    let fl = p2p_probe(topo, g[4].core, g[0].core, 8e9);
    let ff = p2p_probe(topo, g[4].core, g[5].core, 8e9);
    [("L-L", ll), ("F-L", fl), ("F-F", ff)]
}

/// Fig 9 (measured): GPU-utilization traces over full (scaled) training
/// runs on localGPUs, with epoch checkpointing enabled so the periodic
/// dips appear.
pub fn fig9(scale: Scale) -> Vec<(Benchmark, RunReport)> {
    let mut opts = scale.opts();
    opts.checkpoint = true;
    let cells: Vec<(Benchmark, HostConfig)> = Benchmark::all()
        .into_iter()
        .map(|b| (b, HostConfig::LocalGpus))
        .collect();
    runner::sweep(&cells, &opts)
        .into_iter()
        .zip(cells)
        .map(|(r, (b, _))| (b, r.expect("paper workloads fit")))
        .collect()
}

/// Fig 10 rows from a grid: `(benchmark, config, gpu_util, gpu_mem_util,
/// mem_access_share)`.
pub fn fig10(grid: &[GridCell]) -> Vec<(Benchmark, HostConfig, f64, f64, f64)> {
    grid.iter()
        .map(|c| {
            (
                c.benchmark,
                c.config,
                c.report.gpu_util,
                c.report.gpu_mem_util,
                c.report.gpu_mem_access_share,
            )
        })
        .collect()
}

/// Fig 11 rows from a grid: percent change of per-iteration training time
/// vs localGPUs.
pub fn fig11(grid: &[GridCell]) -> Vec<(Benchmark, HostConfig, f64)> {
    let base = |b: Benchmark| {
        grid.iter()
            .find(|c| c.benchmark == b && c.config == HostConfig::LocalGpus)
            .expect("grid contains the baseline")
            .report
            .mean_iter
            .as_secs_f64()
    };
    grid.iter()
        .filter(|c| c.config != HostConfig::LocalGpus)
        .map(|c| {
            let pct = (c.report.mean_iter.as_secs_f64() / base(c.benchmark) - 1.0) * 100.0;
            (c.benchmark, c.config, pct)
        })
        .collect()
}

/// Fig 12 rows from a grid: aggregate falcon-GPU PCIe traffic (bytes/s).
pub fn fig12(grid: &[GridCell]) -> Vec<(Benchmark, HostConfig, f64)> {
    grid.iter()
        .filter(|c| c.config.has_falcon_gpus())
        .map(|c| (c.benchmark, c.config, c.report.falcon_pcie_rate))
        .collect()
}

/// Fig 13 rows from a grid: mean CPU utilization.
pub fn fig13(grid: &[GridCell]) -> Vec<(Benchmark, HostConfig, f64)> {
    grid.iter()
        .map(|c| (c.benchmark, c.config, c.report.cpu_util))
        .collect()
}

/// Fig 14 rows from a grid: mean host-memory utilization.
pub fn fig14(grid: &[GridCell]) -> Vec<(Benchmark, HostConfig, f64)> {
    grid.iter()
        .map(|c| (c.benchmark, c.config, c.report.host_mem_util))
        .collect()
}

/// Fig 15 (measured): percent change of total training time vs the
/// localGPUs (SATA scratch) baseline for the two NVMe attachments.
/// Checkpoints and cold first-epoch reads stay on — they are what the
/// storage configurations differ on.
pub fn fig15(scale: Scale) -> Vec<(Benchmark, HostConfig, f64)> {
    let mut opts = scale.opts();
    opts.checkpoint = true;
    let cells: Vec<(Benchmark, HostConfig)> = Benchmark::all()
        .into_iter()
        .flat_map(|b| {
            HostConfig::storage_configs()
                .into_iter()
                .map(move |c| (b, c))
        })
        .collect();
    let reports: Vec<RunReport> = runner::sweep(&cells, &opts)
        .into_iter()
        .map(|r| r.expect("storage cells fit"))
        .collect();
    let base = |b: Benchmark| {
        cells
            .iter()
            .zip(&reports)
            .find(|((bb, cc), _)| *bb == b && *cc == HostConfig::LocalGpus)
            .expect("baseline present")
            .1
            .total_time
            .as_secs_f64()
    };
    cells
        .iter()
        .zip(&reports)
        .filter(|((_, c), _)| *c != HostConfig::LocalGpus)
        .map(|((b, c), r)| {
            let pct = (r.total_time.as_secs_f64() / base(*b) - 1.0) * 100.0;
            (*b, *c, pct)
        })
        .collect()
}

/// One Fig 16 variant.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    pub config: HostConfig,
    pub variant: &'static str,
    pub per_gpu_batch: u64,
    pub throughput: f64,
    pub mean_iter_secs: f64,
}

/// Fig 16 (measured): BERT-large under DP-fp32, DDP-fp32, DDP-fp16 and
/// sharded-fp16 (batch 6 → 10) on the three GPU configurations. Batches
/// auto-clamp to what fits each variant (the fp32 variants cannot hold
/// batch 6 on a 16 GB V100).
pub fn fig16(scale: Scale) -> Vec<Fig16Row> {
    let variants: [(&'static str, Strategy, Precision, Option<u64>); 4] = [
        ("DP fp32", Strategy::Dp, Precision::Fp32, None),
        ("DDP fp32", Strategy::ddp(), Precision::Fp32, None),
        ("DDP fp16", Strategy::ddp(), Precision::Fp16, None),
        ("DDP fp16 sharded", Strategy::sharded(), Precision::Fp16, Some(10)),
    ];
    let mut rows = Vec::new();
    for config in HostConfig::gpu_configs() {
        for (variant, strategy, precision, batch) in variants {
            let mut opts = scale
                .opts()
                .with_strategy(strategy)
                .with_precision(precision)
                .with_auto_batch();
            opts.checkpoint = false;
            if let Some(b) = batch {
                opts = opts.with_batch(b);
            }
            let r = composable_core::run(Benchmark::BertLarge, config, &opts)
                .expect("auto-batched variants fit");
            // Recover the batch actually used from throughput × iter time.
            let per_gpu_batch = (r.throughput * r.mean_iter.as_secs_f64() / 8.0).round() as u64;
            rows.push(Fig16Row {
                config,
                variant,
                per_gpu_batch,
                throughput: r.throughput,
                mean_iter_secs: r.mean_iter.as_secs_f64(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_within_tolerance() {
        for ((label, params, _, depth), b) in
            table2_measured().into_iter().zip(Benchmark::all())
        {
            let reference = crate::paper::table2_params(b);
            let measured_m = params as f64 / 1e6;
            let err = (measured_m - reference.value).abs() / reference.value;
            assert!(err < 0.05, "{label}: {measured_m:.2}M vs {}", reference.value);
            assert_eq!(depth, crate::paper::table2_depth(b));
        }
    }

    #[test]
    fn table4_matches_paper_within_tolerance() {
        for ((label, measured), (plabel, bw, lat, _)) in
            table4_measured().into_iter().zip(crate::paper::table4())
        {
            assert_eq!(label, plabel);
            let bw_err = (measured.bidir_bandwidth / 1e9 - bw).abs() / bw;
            assert!(bw_err < 0.08, "{label} bandwidth {bw_err:.3} off");
            let lat_err = (measured.latency.as_micros_f64() - lat).abs() / lat;
            assert!(lat_err < 0.12, "{label} latency {lat_err:.3} off");
        }
    }

    #[test]
    fn fig11_bounds_hold_on_quick_grid() {
        let g = grid(Scale::quick());
        for (b, c, pct) in fig11(&g) {
            if c == HostConfig::FalconGpus {
                let (_claim, lo, hi) = crate::paper::fig11_bound(b);
                assert!(
                    pct >= lo && pct <= hi,
                    "{b:?} on {c}: {pct:.1}% outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn fig16_shapes_hold() {
        let rows = fig16(Scale::quick());
        let get = |cfg: HostConfig, v: &str| {
            rows.iter()
                .find(|r| r.config == cfg && r.variant == v)
                .unwrap()
                .throughput
        };
        for cfg in HostConfig::gpu_configs() {
            assert!(get(cfg, "DDP fp16") > 2.0 * get(cfg, "DDP fp32"));
            assert!(get(cfg, "DDP fp32") > 1.8 * get(cfg, "DP fp32"));
            assert!(get(cfg, "DDP fp16 sharded") > get(cfg, "DDP fp16"));
        }
        // Sharded batch really is 10.
        let sharded = rows
            .iter()
            .find(|r| r.config == HostConfig::LocalGpus && r.variant == "DDP fp16 sharded")
            .unwrap();
        assert_eq!(sharded.per_gpu_batch, 10);
    }
}
