//! `bench` — the reproduction harness.
//!
//! One module per table/figure of the paper's evaluation section. Each
//! returns structured rows carrying *paper value* and *measured value*
//! side by side, so the `repro` binary, the Criterion benches, and
//! EXPERIMENTS.md all consume the same code.
//!
//! Scale note: experiments run with capped iterations per epoch
//! ([`Scale`]); the paper's relative quantities (ratios, percent changes,
//! traffic rates, utilizations) are steady-state properties that the cap
//! does not disturb.

pub mod experiments;
pub mod paper;

pub use experiments::{Scale, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig9, grid};
pub use paper::PaperRef;
