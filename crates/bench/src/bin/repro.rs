//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin repro             # everything
//! cargo run --release -p bench --bin repro -- fig11    # one experiment
//! cargo run --release -p bench --bin repro -- --quick  # fast smoke pass
//! cargo run --release -p bench --bin repro -- --jobs 4 # 4 sweep workers
//! ```
//!
//! Output pairs each measured quantity with the paper's published value
//! where one exists. Absolute times differ (the substrate is a simulator);
//! the shapes — who wins, by what factor, where the crossovers are — are
//! the reproduction targets.
//!
//! `--jobs N` sets the parsweep worker count for every sweep (grids,
//! recommendation, policy replays); the default is available parallelism.
//! Thread count never changes a byte of output — only wall-clock (see
//! DESIGN §9). The cluster experiment persists its probe cache to
//! `$PROBE_CACHE` (default `target/probe_cache.json`), so a second run
//! prices every placement without re-running probe simulations.

use bench::experiments::{self, Scale};
use bench::paper;
use composable_core::report::{gbps, pct, sparkline, table};
use composable_core::HostConfig;
use dlmodels::Benchmark;
use fabric::link::comms_requirements;
use scheduler::{
    all_policies, comparison_table, compare_policies_cached, compare_policies_faulty,
    compare_policies_mixed, paper_fault_plan, run_matrix, run_scenario, seeded_pai_mix,
    serve_comparison_table, serving_policies, trace, ProbeCache, Scenario, SchedulerConfig,
};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(n) = jobs_flag(&args) {
        parsweep::set_default_jobs(n);
    }
    let scale = if quick { Scale::quick() } else { Scale::standard() };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            ["--jobs", "--budget", "--seed"].iter().all(|f| !is_flag_value(&args, a, f))
        })
        .map(|s| s.as_str())
        .collect();

    // Declarative scenario runs: everything after the subcommand is a
    // scenario file (or, for the matrix, a directory / shell-expanded
    // glob of them). Handled before the experiment-name loop so file
    // paths are never mistaken for experiment names.
    match wanted.split_first() {
        Some((&"scenario", files)) => return scenario_cmd(files),
        Some((&"scenario-matrix", files)) => return scenario_matrix_cmd(files),
        Some((&"autotune", files)) => return autotune_cmd(files, &args),
        _ => {}
    }

    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);

    if want("table1") {
        table1();
    }
    if want("table2") {
        table2();
    }
    if want("table3") {
        table3();
    }
    if want("table4") {
        table4();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig9") {
        fig9(scale);
    }

    let grid_needed = ["fig10", "fig11", "fig12", "fig13", "fig14"]
        .iter()
        .any(|f| want(f));
    if grid_needed {
        eprintln!("[grid] running 5 benchmarks x 3 GPU configurations ...");
        let grid = experiments::grid(scale);
        if want("fig10") {
            fig10(&grid);
        }
        if want("fig11") {
            fig11(&grid);
        }
        if want("fig12") {
            fig12(&grid);
        }
        if want("fig13") {
            fig13(&grid);
        }
        if want("fig14") {
            fig14(&grid);
        }
    }

    if want("fig15") {
        fig15(scale);
    }
    if want("fig16") {
        fig16(scale);
    }
    if want("cluster") {
        cluster(quick);
    }
    if want("faults") {
        faults(quick);
    }
    if want("serve") {
        serve(quick);
    }
}

/// Parse `--jobs N` / `--jobs=N`. Invalid or missing values are ignored
/// (the default — available parallelism — applies).
/// The numeric value of `--flag N` / `--flag=N`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    let eq = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&eq) {
            return v.parse().ok();
        }
        if a == flag {
            return args.get(i + 1)?.parse().ok();
        }
    }
    None
}

fn jobs_flag(args: &[String]) -> Option<usize> {
    flag_value(args, "--jobs").map(|n| n as usize).filter(|&n| n > 0)
}

/// Is `arg` the value of a space-separated `--flag N`? (It would otherwise
/// be mistaken for an experiment name.)
fn is_flag_value(args: &[String], arg: &str, flag: &str) -> bool {
    args.iter().zip(args.iter().skip(1)).any(|(a, b)| a == flag && b == arg)
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn table1() {
    heading("TABLE I — Software stack details (environment record)");
    let rows: Vec<Vec<String>> = composable_core::config::software_stack()
        .into_iter()
        .map(|(k, v)| vec![k.to_string(), v.to_string()])
        .collect();
    println!("{}", table(&["component", "version"], &rows));
}

fn table2() {
    heading("TABLE II — Characteristics of the evaluated DL benchmarks");
    let rows: Vec<Vec<String>> = experiments::table2_measured()
        .into_iter()
        .zip(Benchmark::all())
        .map(|((label, params, derived, depth), b)| {
            let reference = paper::table2_params(b);
            vec![
                label,
                format!("{:.1}M", params as f64 / 1e6),
                format!("{:.1}M", reference.value),
                depth.to_string(),
                derived.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["benchmark", "params (measured)", "params (paper)", "depth (paper)", "weighted layers (derived)"],
            &rows
        )
    );
}

fn table3() {
    heading("TABLE III — Composable host configurations");
    let rows: Vec<Vec<String>> = HostConfig::all()
        .into_iter()
        .map(|c| vec![c.label().to_string(), c.description().to_string()])
        .collect();
    println!("{}", table(&["label", "host configuration"], &rows));
}

fn table4() {
    heading("TABLE IV — GPU-GPU bandwidth, latency, and protocol");
    let measured = experiments::table4_measured();
    let rows: Vec<Vec<String>> = measured
        .into_iter()
        .zip(paper::table4())
        .map(|((label, m), (_, bw, lat, proto))| {
            vec![
                label.to_string(),
                format!("{:.2}", m.bidir_bandwidth / 1e9),
                format!("{bw:.2}"),
                format!("{:.2}", m.latency.as_micros_f64()),
                format!("{lat:.2}"),
                proto.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["pair", "bidir GB/s (sim)", "bidir GB/s (paper)", "latency us (sim)", "latency us (paper)", "protocol"],
            &rows
        )
    );
}

fn fig5() {
    heading("FIG 5 — Communications requirements (survey table)");
    let rows: Vec<Vec<String>> = comms_requirements()
        .into_iter()
        .map(|r| {
            vec![
                r.path.to_string(),
                format!("{} - {}", r.latency_low, r.latency_high),
                format!("{} - {} Gbps", r.bandwidth_low_gbps, r.bandwidth_high_gbps),
                r.link_length.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["communication", "latency", "bandwidth", "link length"], &rows)
    );
}

fn fig9(scale: Scale) {
    heading("FIG 9 — GPU utilization patterns over training (localGPUs)");
    println!("(dips = epoch-boundary checkpointing / pipeline restart)\n");
    for (b, r) in experiments::fig9(scale) {
        println!(
            "{:12} {}  mean={:.0}%",
            b.label(),
            sparkline(&r.gpu_util_trace),
            r.gpu_util * 100.0
        );
    }
}

fn fig10(grid: &[experiments::GridCell]) {
    heading("FIG 10 — GPU performance across composable configurations");
    let rows: Vec<Vec<String>> = experiments::fig10(grid)
        .into_iter()
        .map(|(b, c, util, mem, access)| {
            vec![
                b.label().to_string(),
                c.label().to_string(),
                format!("{:.0}%", util * 100.0),
                format!("{:.0}%", mem * 100.0),
                format!("{:.0}%", access * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["benchmark", "config", "GPU util", "GPU mem occupancy", "mem-access time share"],
            &rows
        )
    );
    println!("paper: utilization slightly higher on Falcon configs; all > 80% in full runs;");
    println!("       memory-access share lower on Falcon configs (exposed NCCL kernel time).");
}

fn fig11(grid: &[experiments::GridCell]) {
    heading("FIG 11 — % change of training time vs localGPUs");
    let rows: Vec<Vec<String>> = experiments::fig11(grid)
        .into_iter()
        .map(|(b, c, p)| {
            let (claim, _, _) = paper::fig11_bound(b);
            vec![
                b.label().to_string(),
                c.label().to_string(),
                pct(p),
                claim.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["benchmark", "config", "Δ time (sim)", "paper claim"], &rows)
    );
}

fn fig12(grid: &[experiments::GridCell]) {
    heading("FIG 12 — PCIe transfer rate of falcon-attached GPUs");
    let rows: Vec<Vec<String>> = experiments::fig12(grid)
        .into_iter()
        .map(|(b, c, rate)| {
            let reference = paper::fig12_traffic(b)
                .map_or("-".to_string(), |v| format!("{v:.2} GB/s (falconGPUs)"));
            vec![
                b.label().to_string(),
                c.label().to_string(),
                gbps(rate),
                reference,
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["benchmark", "config", "traffic (sim)", "paper"], &rows)
    );
}

fn fig13(grid: &[experiments::GridCell]) {
    heading("FIG 13 — CPU utilization");
    let rows: Vec<Vec<String>> = experiments::fig13(grid)
        .into_iter()
        .map(|(b, c, u)| {
            vec![
                b.label().to_string(),
                c.label().to_string(),
                format!("{:.0}%", u * 100.0),
            ]
        })
        .collect();
    println!("{}", table(&["benchmark", "config", "CPU util"], &rows));
    println!("paper: vision > NLP (CPU-side preprocessing); no benchmark is CPU-bound.");
}

fn fig14(grid: &[experiments::GridCell]) {
    heading("FIG 14 — System memory utilization");
    let rows: Vec<Vec<String>> = experiments::fig14(grid)
        .into_iter()
        .map(|(b, c, u)| {
            vec![
                b.label().to_string(),
                c.label().to_string(),
                format!("{:.1}%", u * 100.0),
            ]
        })
        .collect();
    println!("{}", table(&["benchmark", "config", "host mem util"], &rows));
    println!("paper: system memory is not stressed by any benchmark.");
}

fn fig15(scale: Scale) {
    heading("FIG 15 — % change of training time vs localGPUs (storage study)");
    let rows: Vec<Vec<String>> = experiments::fig15(scale)
        .into_iter()
        .map(|(b, c, p)| {
            vec![b.label().to_string(), c.label().to_string(), pct(p)]
        })
        .collect();
    println!("{}", table(&["benchmark", "config", "Δ time (sim)"], &rows));
    println!("paper: NVMe accelerates the data-heavy benchmarks (Yolo, BERT);");
    println!("       falcon-attached NVMe ≈ local NVMe (small switching overhead).");
}

fn fig16(scale: Scale) {
    heading("FIG 16 — Software-level optimizations, BERT-large fine-tuning");
    let rows = experiments::fig16(scale);
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.label().to_string(),
                r.variant.to_string(),
                r.per_gpu_batch.to_string(),
                format!("{:.1}", r.throughput),
                format!("{:.1} ms", r.mean_iter_secs * 1e3),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["config", "variant", "batch/GPU", "samples/s", "iter"],
            &printable
        )
    );
    // Paper claims, restated with measured numbers.
    let thr = |cfg: HostConfig, v: &str| {
        rows.iter()
            .find(|r| r.config == cfg && r.variant == v)
            .unwrap()
            .throughput
    };
    for cfg in HostConfig::gpu_configs() {
        let amp = 1.0 - thr(cfg, "DDP fp32") / thr(cfg, "DDP fp16");
        let ddp = (thr(cfg, "DDP fp32") / thr(cfg, "DP fp32") - 1.0) * 100.0;
        let shard = (thr(cfg, "DDP fp16 sharded") / thr(cfg, "DDP fp16") - 1.0) * 100.0;
        println!(
            "{:10}  fp16 time reduction {:.0}% (paper: >50%, >70% falcon) | DDP over DP {:+.0}% (paper: >80% local) | sharded {:+.0}%",
            cfg.label(),
            amp * 100.0,
            ddp,
            shard
        );
    }
}

fn cluster(quick: bool) {
    heading("CLUSTER — multi-job trace replay on the shared Falcon test bed");
    let n_jobs = if quick { 8 } else { 20 };
    let trace = trace::seeded_two_tenant(n_jobs, 0xC10D);
    println!(
        "trace {}: {} jobs, {} tenants, 16 pooled V100s (2 drawers x 8 slots, advanced mode)\n",
        trace.name,
        trace.jobs.len(),
        trace.n_tenants()
    );
    let cfg = SchedulerConfig::default();
    let cache_path: PathBuf = std::env::var_os("PROBE_CACHE")
        .map_or_else(|| PathBuf::from("target/probe_cache.json"), PathBuf::from);
    let mut cache = ProbeCache::load_file(&cache_path, cfg.probe_iters);
    let loaded = cache.len();
    let reports =
        compare_policies_cached(&trace, all_policies(), &cfg, parsweep::default_jobs(), &mut cache)
            .expect("trace drains under every policy");
    println!(
        "probe cache {}: {} entries loaded, {} probe simulations run, {} entries saved",
        cache_path.display(),
        loaded,
        cache.probes_run(),
        cache.len()
    );
    match cache.save_file(&cache_path) {
        Ok(()) => {}
        Err(e) => eprintln!("[cluster] probe cache not saved ({e}); runs stay correct without it"),
    }
    println!("{}", comparison_table(&reports));
    let fifo = reports
        .iter()
        .find(|r| r.policy == "fifo-first-fit")
        .expect("baseline present");
    let best = reports
        .iter()
        .min_by_key(|r| r.mean_jct)
        .expect("nonempty comparison");
    println!(
        "\nbest mean JCT: {} at {:.1}s ({} vs fifo-first-fit); every placement was an",
        best.policy,
        best.mean_jct.as_secs_f64(),
        pct(
            (best.mean_jct.as_secs_f64() / fifo.mean_jct.as_secs_f64() - 1.0) * 100.0
        )
    );
    println!(
        "MCS-audited recomposition ({} audit entries under {}).",
        fifo.audit_entries, fifo.policy
    );
}

fn faults(quick: bool) {
    heading("FAULTS — failure injection and MCS-driven recovery, per policy");
    let n_jobs = if quick { 8 } else { 20 };
    let trace = trace::seeded_two_tenant(n_jobs, 0xC10D);
    let plan = paper_fault_plan();
    println!(
        "trace {}: {} jobs; fault plan {}: {} events (drawer outage, link degrade, thermal trip)\n",
        trace.name,
        trace.jobs.len(),
        plan.name,
        plan.events.len()
    );
    let cfg = SchedulerConfig::default();
    let cache_path: PathBuf = std::env::var_os("PROBE_CACHE")
        .map_or_else(|| PathBuf::from("target/probe_cache.json"), PathBuf::from);
    let mut cache = ProbeCache::load_file(&cache_path, cfg.probe_iters);
    let pairs = compare_policies_faulty(
        &trace,
        all_policies(),
        &plan,
        &cfg,
        parsweep::default_jobs(),
        &mut cache,
    )
    .expect("faulty trace drains under every policy");
    match cache.save_file(&cache_path) {
        Ok(()) => {}
        Err(e) => eprintln!("[faults] probe cache not saved ({e}); runs stay correct without it"),
    }
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .map(|(base, faulty)| {
            let r = faulty
                .recovery
                .as_ref()
                .expect("faulty replay carries a recovery block");
            vec![
                faulty.policy.clone(),
                format!("{:.1}s", base.mean_jct.as_secs_f64()),
                format!("{:.1}s", faulty.mean_jct.as_secs_f64()),
                format!("{:.2}x", r.jct_inflation),
                r.evacuations.to_string(),
                format!("{:.1}s", r.mean_recovery.as_secs_f64()),
                format!("{:.1}s", r.p95_recovery.as_secs_f64()),
                format!("{:.0}", r.work_lost_gpu_secs),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "policy",
                "JCT fault-free",
                "JCT faulty",
                "inflation",
                "evacuations",
                "mean recovery",
                "p95 recovery",
                "work lost (GPU-s)",
            ],
            &rows
        )
    );
    // The smoke contract (scripts/ci.sh): a clean exit certifies that every
    // policy absorbed the fault plan with real recoveries on the clock.
    for (_, faulty) in &pairs {
        let r = faulty.recovery.as_ref().expect("recovery block present");
        assert!(r.fault_events > 0, "{}: no fault events applied", faulty.policy);
        assert!(r.evacuations > 0, "{}: no evacuations recorded", faulty.policy);
        assert!(
            !r.mean_recovery.is_zero(),
            "{}: zero mean recovery time",
            faulty.policy
        );
        assert!(r.jct_inflation >= 1.0, "{}: faults sped the trace up", faulty.policy);
    }
    println!("recovery metrics sane under every policy (evacuations > 0, recovery clock > 0).");
}

fn serve(quick: bool) {
    heading("SERVE — latency-SLO inference co-scheduled with training");
    let (n_jobs, n_services) = if quick { (8, 4) } else { (16, 8) };
    let mix = seeded_pai_mix(n_jobs, n_services, 0xC10D);
    println!(
        "mix {}: {} training jobs + {} services (MIG-style 1/7..7/7 slices,",
        mix.name,
        mix.jobs.len(),
        mix.services.len()
    );
    println!("Poisson/diurnal arrivals, per-service p99 SLOs) on the 16-GPU test bed\n");
    let cfg = SchedulerConfig::default();
    let cache_path: PathBuf = std::env::var_os("PROBE_CACHE")
        .map_or_else(|| PathBuf::from("target/probe_cache.json"), PathBuf::from);
    let mut cache = ProbeCache::load_file(&cache_path, cfg.probe_iters);
    let reports = compare_policies_mixed(
        &mix,
        serving_policies(),
        &cfg,
        parsweep::default_jobs(),
        &mut cache,
    )
    .expect("mixed trace drains under every policy");
    match cache.save_file(&cache_path) {
        Ok(()) => {}
        Err(e) => eprintln!("[serve] probe cache not saved ({e}); runs stay correct without it"),
    }
    println!("{}", serve_comparison_table(&reports));
    let get = |name: &str| {
        reports
            .iter()
            .find(|r| r.policy == name)
            .expect("policy present in comparison")
    };
    let fifo = get("fifo-first-fit");
    let pack = get("slo-aware-pack");
    let att = |r: &scheduler::ScheduleReport| r.serve.as_ref().expect("serving block").attainment;
    println!(
        "\nslo-aware-pack attainment {:.4} vs fifo-first-fit {:.4}; training mean JCT {:.1}s vs {:.1}s",
        att(pack),
        att(fifo),
        pack.mean_jct.as_secs_f64(),
        fifo.mean_jct.as_secs_f64()
    );
    // The smoke contract (scripts/ci.sh): request conservation under every
    // policy; in the standard mix the SLO-aware packer must clear 95%
    // attainment where the training-first baseline does not.
    for r in &reports {
        let s = r.serve.as_ref().expect("serving block present");
        assert_eq!(s.generated, s.completed + s.dropped, "{}: leaked requests", r.policy);
        assert!(s.generated > 0, "{}: services saw no traffic", r.policy);
    }
    if !quick {
        assert!(att(pack) >= 0.95, "slo-aware-pack must clear 95% attainment");
        assert!(att(fifo) < 0.95, "baseline should violate SLOs under contention");
    }
    println!("request conservation holds under every policy (generated = completed + dropped).");
}

fn probe_cache_path() -> PathBuf {
    std::env::var_os("PROBE_CACHE")
        .map_or_else(|| PathBuf::from("target/probe_cache.json"), PathBuf::from)
}

fn die(msg: String) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2)
}

fn load_scenario(path: &Path) -> Scenario {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(format!("cannot read {}: {e}", path.display())));
    Scenario::from_json_str(&text)
        .unwrap_or_else(|e| die(format!("cannot parse {}: {e}", path.display())))
}

/// Expand each argument: a directory yields its `*.json` files in
/// lexicographic order (so matrix output order never depends on readdir
/// order); anything else is taken as one scenario file. Shell glob
/// expansion arrives here as multiple file arguments.
fn collect_scenario_files(args: &[&str]) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for a in args {
        let p = PathBuf::from(a);
        if p.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&p)
                .unwrap_or_else(|e| die(format!("cannot read {}: {e}", p.display())))
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|e| e.extension().is_some_and(|x| x == "json"))
                .collect();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(p);
        }
    }
    files
}

/// `repro scenario <file>`: run one declarative scenario and emit its
/// canonical report JSON on stdout (a one-policy, full-metrics scenario
/// emits the bare `ScheduleReport`, byte-identical to the goldens the
/// legacy subcommands pinned). Progress and probe-cache stats go to
/// stderr so stdout stays exactly the canonical bytes.
fn scenario_cmd(files: &[&str]) {
    let [file] = files else {
        die(format!("scenario takes exactly one file, got {}", files.len()));
    };
    let path = PathBuf::from(file);
    let sc = load_scenario(&path);
    let cache_path = probe_cache_path();
    // The cache stamp folds in the scenario's rack topology: a file saved
    // from a 1-chassis run loads empty for a 4-chassis run (and vice
    // versa) instead of silently mixing persistence domains.
    let mut cache = ProbeCache::load_file_for(&cache_path, sc.config.probe_iters, sc.topology.rack());
    let loaded = cache.len();
    let report = run_scenario(&sc, parsweep::default_jobs(), &mut cache)
        .unwrap_or_else(|e| die(format!("{}: {e}", path.display())));
    eprintln!(
        "[scenario {}] {} policies replayed; probe cache {}: {} entries loaded, {} probes run, {} saved",
        sc.name,
        report.reports.len(),
        cache_path.display(),
        loaded,
        cache.probes_run(),
        cache.len()
    );
    if let Err(e) = cache.save_file(&cache_path) {
        eprintln!("[scenario] probe cache not saved ({e}); runs stay correct without it");
    }
    print!("{}", report.canonical_json_string());
}

/// `repro autotune <portfolio-dir> [--budget N] [--seed N] [--jobs N]`:
/// search the policy-knob space against the portfolio and print the
/// winning `TunedPolicy` artifact to stdout. The search (artifact bytes
/// included) is byte-identical at any `--jobs`; progress goes to stderr.
fn autotune_cmd(files: &[&str], args: &[String]) {
    let [dir] = files else {
        die(format!("autotune takes exactly one portfolio directory, got {}", files.len()));
    };
    let pf = autotune::Portfolio::load_dir(Path::new(dir)).unwrap_or_else(|e| die(e.to_string()));
    let default = autotune::SearchSpec::default();
    let spec = autotune::SearchSpec {
        seed: flag_value(args, "--seed").unwrap_or(default.seed),
        budget: flag_value(args, "--budget").map_or(default.budget, |n| n as usize),
    };
    // A fresh cache per search: probe prices are pure, so warm state
    // never changes an answer, and the portfolio may span topologies
    // while the persisted cache stamp is bound to exactly one.
    let mut cache = ProbeCache::new(pf.probe_iters());
    let tuned = autotune::tune(&pf, &spec, parsweep::default_jobs(), &mut cache)
        .unwrap_or_else(|e| die(e.to_string()));
    eprintln!(
        "[autotune {dir}] {} scenarios, budget {} (seed {}): {} evaluations, tuned objective \
         {:.4} vs best preset {} at {:.4}",
        pf.scenarios.len(),
        spec.budget,
        spec.seed,
        tuned.evals,
        tuned.objective,
        tuned.baseline_name,
        tuned.baseline_objective
    );
    print!("{}", tuned.to_json_string());
}

/// `repro scenario-matrix <dir|files...>`: run every scenario through one
/// parsweep fan-out and print a comparison table per scenario. Stdout is
/// a pure function of the reports, so it is byte-identical at any
/// `--jobs` count — the property `tests/parallel_determinism.rs` pins.
fn scenario_matrix_cmd(files: &[&str]) {
    let paths = collect_scenario_files(files);
    if paths.is_empty() {
        die("scenario-matrix needs at least one scenario file or directory".into());
    }
    let scenarios: Vec<Scenario> = paths.iter().map(|p| load_scenario(p)).collect();
    let cfg = SchedulerConfig::default();
    let cache_path = probe_cache_path();
    let mut cache = ProbeCache::load_file(&cache_path, cfg.probe_iters);
    let loaded = cache.len();
    let reports = run_matrix(&scenarios, parsweep::default_jobs(), &mut cache)
        .unwrap_or_else(|e| die(e.to_string()));
    eprintln!(
        "[scenario-matrix] {} scenarios replayed; probe cache {}: {} entries loaded, {} probes run, {} saved",
        reports.len(),
        cache_path.display(),
        loaded,
        cache.probes_run(),
        cache.len()
    );
    if let Err(e) = cache.save_file(&cache_path) {
        eprintln!("[scenario-matrix] probe cache not saved ({e}); runs stay correct without it");
    }
    for rep in &reports {
        let serves = rep.reports.iter().any(|r| r.serve.is_some());
        println!(
            "== scenario {} ({} {}) ==",
            rep.scenario,
            rep.reports.len(),
            if rep.reports.len() == 1 { "policy" } else { "policies" }
        );
        if serves {
            println!("{}", serve_comparison_table(&rep.reports));
        } else {
            println!("{}", comparison_table(&rep.reports));
        }
    }
}
