//! The paper's published numbers, as machine-readable references.

use dlmodels::Benchmark;

/// A reference value from the paper with its location.
#[derive(Debug, Clone, Copy)]
pub struct PaperRef {
    pub what: &'static str,
    pub value: f64,
    pub source: &'static str,
}

/// Table II parameter counts (millions).
pub fn table2_params(b: Benchmark) -> PaperRef {
    let (value, what) = match b {
        Benchmark::MobileNetV2 => (3.4, "MobileNetV2 params (M)"),
        Benchmark::ResNet50 => (25.6, "ResNet-50 params (M)"),
        Benchmark::YoloV5L => (47.0, "YOLOv5-L params (M)"),
        Benchmark::BertBase => (110.0, "BERT params (M)"),
        Benchmark::BertLarge => (340.0, "BERT-L params (M)"),
    };
    PaperRef {
        what,
        value,
        source: "Table II",
    }
}

/// Table II depths.
pub fn table2_depth(b: Benchmark) -> u32 {
    match b {
        Benchmark::MobileNetV2 => 53,
        Benchmark::ResNet50 => 50,
        Benchmark::YoloV5L => 392,
        Benchmark::BertBase => 12,
        Benchmark::BertLarge => 24,
    }
}

/// Table IV: (bidirectional bandwidth GB/s, p2p write latency µs, protocol).
pub fn table4() -> [(&'static str, f64, f64, &'static str); 3] {
    [
        ("L-L", 72.37, 1.85, "NVLink"),
        ("F-L", 19.64, 2.66, "PCI-e 4.0"),
        ("F-F", 24.47, 2.08, "PCI-e 4.0"),
    ]
}

/// Fig 12: falconGPUs PCIe traffic in GB/s for the benchmarks the paper
/// quotes numerically.
pub fn fig12_traffic(b: Benchmark) -> Option<f64> {
    match b {
        Benchmark::MobileNetV2 => Some(4.0),
        Benchmark::ResNet50 => Some(11.31),
        Benchmark::BertLarge => Some(76.43),
        _ => None,
    }
}

/// Fig 11 claims as bounds on percent slowdown vs localGPUs.
pub fn fig11_bound(b: Benchmark) -> (&'static str, f64, f64) {
    match b {
        Benchmark::MobileNetV2 | Benchmark::ResNet50 => ("< 5% (small vision)", -1.0, 7.0),
        Benchmark::YoloV5L => ("< 7% (vision overall)", -1.0, 9.0),
        Benchmark::BertBase => ("moderate NLP overhead", 5.0, 80.0),
        Benchmark::BertLarge => ("~2x on falconGPUs", 70.0, 130.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_refs_cover_all_benchmarks() {
        for b in Benchmark::all() {
            assert!(table2_params(b).value > 0.0);
            assert!(table2_depth(b) > 0);
        }
    }

    #[test]
    fn table4_rows() {
        let t = table4();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].0, "L-L");
        assert!(t[0].1 > t[2].1, "NVLink beats PCIe");
    }
}
