//! Ablation benches for the design choices DESIGN.md calls out (testkit
//! harness): each bench runs the variants and asserts the *direction* of
//! the effect, so `cargo bench` also documents why the defaults are what
//! they are.
//!
//! * DDP gradient-bucket size (communication/compute overlap granularity)
//! * Ring construction policy (optimal-bottleneck vs naive order)
//! * Dataloader prefetch depth (pipeline hiding)
//! * Dataloader worker count (CPU-side throughput)

use collectives::{plan_ring, ring_bottleneck};
use composable_core::runner::{run, ExperimentOpts};
use composable_core::HostConfig;
use devices::catalog::wire_cube_mesh;
use devices::gpu::{add_gpu, GpuSpec};
use dlmodels::Benchmark;
use fabric::Topology;
use testkit::bench::{black_box, BenchOpts, Suite};
use training::Strategy;

fn main() {
    let mut s = Suite::with_opts(
        "ablations",
        BenchOpts {
            warmup_iters: 1,
            iters: 10,
        },
    );

    s.bench("ablation_ddp_bucket_size", || {
        let mut iters = Vec::new();
        for mib in [5.0, 25.0, 400.0] {
            let opts = ExperimentOpts::scaled(4)
                .without_checkpoints()
                .with_strategy(Strategy::Ddp {
                    bucket_bytes: mib * 1024.0 * 1024.0,
                });
            let r = run(Benchmark::BertLarge, HostConfig::LocalGpus, &opts).unwrap();
            iters.push(r.mean_iter.as_secs_f64());
        }
        // One giant bucket destroys overlap: it must be slower than
        // PyTorch's 25 MiB default.
        assert!(
            iters[2] > iters[1] * 1.15,
            "giant bucket {} vs default {}",
            iters[2],
            iters[1]
        );
        black_box(iters)
    });

    {
        let mut topo = Topology::new();
        let spec = GpuSpec::v100_sxm2_16gb();
        let gpus: Vec<_> = (0..8)
            .map(|i| add_gpu(&mut topo, &format!("g{i}"), &spec))
            .collect();
        wire_cube_mesh(&mut topo, &gpus);
        let cores: Vec<_> = gpus.iter().map(|g| g.core).collect();
        s.bench("ablation_ring_policy", || {
            let mut t = topo.clone();
            let planned = plan_ring(&mut t, &cores);
            let optimal = ring_bottleneck(&mut t, &planned);
            // A naive index-order ring crosses non-adjacent NVLink pairs
            // (multi-hop edges) — strictly worse bottleneck than planned.
            let naive = ring_bottleneck(&mut t, &cores);
            assert!(
                optimal >= naive,
                "planned {optimal} must beat naive {naive}"
            );
            black_box((optimal, naive))
        });
    }

    s.bench("ablation_prefetch_depth", || {
        // MobileNet is the most input-sensitive benchmark; compare a
        // depth-0-equivalent (1) against the default (2).
        let time = |depth: u32| {
            let composed = composable_core::build_config(HostConfig::LocalGpus);
            let mut cfg = training::JobConfig::paper_scaled(Benchmark::MobileNetV2, 8, 8);
            cfg.prefetch_depth = depth;
            cfg.checkpoint_each_epoch = false;
            training::run_job(composed.topology, composed.cluster, cfg)
                .unwrap()
                .total_time
                .as_secs_f64()
        };
        let shallow = time(1);
        let deep = time(3);
        assert!(deep <= shallow * 1.02, "prefetch never hurts: {deep} vs {shallow}");
        black_box((shallow, deep))
    });

    s.bench("ablation_dataloader_workers", || {
        let time = |workers: u32| {
            let composed = composable_core::build_config(HostConfig::LocalNvme);
            let mut cfg = training::JobConfig::paper_scaled(Benchmark::MobileNetV2, 8, 8);
            cfg.workers_per_gpu = workers;
            cfg.checkpoint_each_epoch = false;
            training::run_job(composed.topology, composed.cluster, cfg)
                .unwrap()
                .total_time
                .as_secs_f64()
        };
        let starved = time(1);
        let fed = time(5);
        assert!(
            starved > fed * 1.3,
            "1 worker must starve MobileNet: {starved} vs {fed}"
        );
        black_box((starved, fed))
    });
}
