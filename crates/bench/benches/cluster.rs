//! Cluster-scheduler benches (testkit harness): timing for a full trace
//! replay, plus directional assertions that make `cargo bench` document
//! *why* the smarter policies exist — on the seeded two-tenant trace, a
//! placement policy that respects the chassis topology must beat naive
//! FIFO first-fit on mean job-completion time.

use scheduler::{
    all_policies, compare_policies, compare_policies_faulty, paper_fault_plan, trace,
    ProbeCache, SchedulerConfig, ScheduleReport,
};
use testkit::bench::{black_box, BenchOpts, Suite};

fn replay_all(n_jobs: usize, seed: u64) -> Vec<ScheduleReport> {
    compare_policies(
        &trace::seeded_two_tenant(n_jobs, seed),
        all_policies(),
        &SchedulerConfig::default(),
    )
    .expect("trace drains under every policy")
}

fn main() {
    let mut s = Suite::with_opts(
        "cluster",
        BenchOpts {
            warmup_iters: 1,
            iters: 5,
        },
    );

    s.bench("cluster_replay_20_jobs_4_policies", || {
        let reports = replay_all(20, 0xC10D);
        assert_eq!(reports.len(), 4);
        black_box(reports)
    });

    s.bench("cluster_policy_beats_fifo_on_mean_jct", || {
        let reports = replay_all(20, 0xC10D);
        let jct = |name: &str| {
            reports
                .iter()
                .find(|r| r.policy == name)
                .expect("policy ran")
                .mean_jct
                .as_secs_f64()
        };
        let fifo = jct("fifo-first-fit");
        let smart = jct("frag-aware").min(jct("topology-aware"));
        assert!(
            smart < fifo,
            "topology-respecting placement must beat FIFO first-fit: smart {smart:.2}s vs fifo {fifo:.2}s"
        );
        black_box((fifo, smart))
    });

    s.bench("cluster_topology_packing_recovers_faster_from_faults", || {
        let cfg = SchedulerConfig::default();
        let mut cache = ProbeCache::new(cfg.probe_iters);
        let pairs = compare_policies_faulty(
            &trace::seeded_two_tenant(20, 0xC10D),
            all_policies(),
            &paper_fault_plan(),
            &cfg,
            4,
            &mut cache,
        )
        .expect("faulty trace drains under every policy");
        let recovery = |name: &str| {
            pairs
                .iter()
                .map(|(_, f)| f)
                .find(|f| f.policy == name)
                .expect("policy ran")
                .recovery
                .as_ref()
                .expect("faulty replay carries recovery metrics")
                .mean_recovery
                .as_secs_f64()
        };
        let fifo = recovery("fifo-first-fit");
        let smart = recovery("frag-aware").min(recovery("topology-aware"));
        // First-fit's drawer-spanning gangs straddle the struck drawer, so
        // it loses more jobs to the outage and queues longer to re-place
        // them; single-drawer packers contain the blast radius.
        assert!(
            smart < fifo,
            "topology-respecting packing must recover faster: smart {smart:.2}s vs fifo {fifo:.2}s"
        );
        black_box((fifo, smart))
    });

    s.bench("cluster_fragmentation_visible_under_first_fit", || {
        let reports = replay_all(20, 0xC10D);
        let share = |name: &str| {
            reports
                .iter()
                .find(|r| r.policy == name)
                .expect("policy ran")
                .frag_share
        };
        // FIFO first-fit splits jobs across drawers; frag-aware never does.
        assert_eq!(share("frag-aware"), 0.0, "frag-aware must never split");
        assert!(
            share("fifo-first-fit") > 0.0,
            "the seeded trace must fragment under first-fit or the comparison is vacuous"
        );
        black_box(())
    });
}
