//! Scenario-matrix throughput bench (testkit harness): the whole
//! checked-in `scenarios/` directory run through [`scheduler::run_matrix`]
//! at `--jobs 1` vs `--jobs 4`, with byte-identity asserted up front.
//!
//! The jobs4/jobs1 ratio is the tracked signal here: when parallel matrix
//! execution drops below serial (`matrix_speedup < 1.0`) a non-fatal
//! WARNING is printed and the ratio lands in `BENCH_scenario.json`, so a
//! parallelism regression stays visible in the checked-in baseline even
//! on hosts too small to enforce a speedup floor.

use desim::json::Value;
use scheduler::{run_matrix, ProbeCache, Scenario, SchedulerConfig};
use testkit::bench::{black_box, BenchOpts, Suite};

fn load_scenarios() -> Vec<Scenario> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("scenarios/ is checked in")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()));
            Scenario::from_json_str(&text)
                .unwrap_or_else(|e| panic!("cannot parse {}: {e}", p.display()))
        })
        .collect()
}

/// One full matrix pass with a fresh shared cache: the bench measures
/// probing + replay + report assembly, not cache hits.
fn matrix_pass(scenarios: &[Scenario], jobs: usize) -> Vec<String> {
    let mut cache = ProbeCache::new(SchedulerConfig::default().probe_iters);
    run_matrix(scenarios, jobs, &mut cache)
        .expect("every pinned scenario runs")
        .iter()
        .map(|r| r.canonical_json_string())
        .collect()
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scenarios = load_scenarios();
    assert!(scenarios.len() >= 5, "the pinned scenario set is checked in");
    let n_scenarios = scenarios.len();

    // Byte-identity across worker counts is asserted once up front so a
    // determinism regression fails loudly before any timing is reported.
    let serial = matrix_pass(&scenarios, 1);
    let parallel = matrix_pass(&scenarios, 4);
    assert_eq!(serial, parallel, "jobs=4 matrix output must be byte-identical to jobs=1");

    let mut s = Suite::with_opts(
        "scenario",
        BenchOpts {
            warmup_iters: 1,
            iters: 5,
        },
    );

    let matrix1 = s
        .bench("scenario_matrix_jobs1", || {
            black_box(matrix_pass(&scenarios, 1).len())
        })
        .clone();
    let matrix4 = s
        .bench("scenario_matrix_jobs4", || {
            black_box(matrix_pass(&scenarios, 4).len())
        })
        .clone();
    let matrix_speedup = matrix1.median_ns as f64 / matrix4.median_ns as f64;
    println!(
        "  -> matrix speedup jobs4/jobs1: {matrix_speedup:.2}x over {n_scenarios} scenarios on {cores} core(s)"
    );
    if matrix_speedup < 1.0 {
        // Non-fatal by design: few-core hosts (CI included) legitimately
        // see <1.0x; the ratio below keeps the trajectory visible.
        println!(
            "  -> WARNING: parallel matrix slower than serial ({matrix_speedup:.2}x < 1.00x); \
             watch matrix_speedup in BENCH_scenario.json"
        );
    }

    // parsweep clamps the requested worker count to the fan-out width, so
    // the baseline records what each leg actually ran with; on a 1-core
    // host the speedup ratio is scheduling noise and is recorded as null.
    let workers = |requested: usize| requested.max(1).min(n_scenarios.max(1));
    let speedup = testkit::bench::speedup_or_null(cores, matrix_speedup);
    let note = if cores >= 2 {
        "matrix_speedup is wall-clock only and tracked, not asserted; output is \
         byte-identical at any worker count (asserted above and in \
         tests/parallel_determinism.rs)"
            .to_string()
    } else {
        format!(
            "{}; output is still byte-identical at any worker count (asserted above \
             and in tests/parallel_determinism.rs)",
            testkit::bench::suppressed_speedup_note("matrix_speedup")
        )
    };
    let baseline = Value::obj(vec![
        ("suite", Value::str("scenario-matrix")),
        ("host_parallelism", Value::from_u64(cores as u64)),
        ("n_scenarios", Value::from_u64(n_scenarios as u64)),
        ("matrix_jobs1_median_ns", Value::from_u64(matrix1.median_ns as u64)),
        ("matrix_jobs1_workers", Value::from_u64(workers(1) as u64)),
        ("matrix_jobs4_median_ns", Value::from_u64(matrix4.median_ns as u64)),
        ("matrix_jobs4_workers", Value::from_u64(workers(4) as u64)),
        ("matrix_speedup", speedup),
        ("note", Value::str(note)),
    ])
    .emit_pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenario.json");
    std::fs::write(path, baseline + "\n").expect("write BENCH_scenario.json");
    println!("baseline written to BENCH_scenario.json");
}
