//! Rack scale-out benches (testkit harness): the same seeded two-tenant
//! replay at every supported rack scale — 16 GPUs (one Falcon chassis),
//! 32 (2 chassis), 64 (4), and 128 (8, the full envelope) — so the cost
//! of crossing the inter-chassis fabric tier is a tracked number, not a
//! guess. Alongside the timings, a directional assertion: at 32 GPUs the
//! placement policies that price the cross-chassis hop (frag-aware,
//! topology-aware) must beat naive FIFO first-fit on mean JCT.
//!
//! Results land in `BENCH_cluster_scale.json` at the workspace root: raw
//! desim events/sec (the denominator every replay pays per event) plus a
//! median replay wall-clock per scale.

use desim::json::Value;
use desim::{Dur, Sim};
use devices::GpuSpec;
use dlmodels::Benchmark;
use scheduler::{
    all_policies, compare_policies_cached_on, cross_chassis_stretch, trace, ProbeCache,
    RackTopology, ScheduleReport, SchedulerConfig, Shape,
};
use testkit::bench::{black_box, BenchOpts, Suite};
use training::engine::model_for;
use training::{max_feasible_batch, JobConfig};

const DESIM_EVENTS: u64 = 100_000;

/// One self-rescheduling event: the leanest trip around the event loop.
fn tick(remaining: &mut u64, sim: &mut Sim<u64>) {
    if *remaining > 0 {
        *remaining -= 1;
        sim.schedule_in(Dur::from_nanos(1), tick);
    }
}

fn desim_event_chain() -> u64 {
    let mut sim: Sim<u64> = Sim::new();
    let mut remaining = DESIM_EVENTS;
    sim.schedule_in(Dur::from_nanos(1), tick);
    sim.run(&mut remaining);
    assert_eq!(remaining, 0);
    sim.events_executed()
}

/// The benched scales: (chassis, jobs in the trace, per-tenant quota).
/// Job count and quota grow with the pool so every scale is contended —
/// an idle 128-GPU rack would time nothing but probe overhead.
const SCALES: [(u8, usize, usize); 4] = [(1, 16, 12), (2, 24, 20), (4, 32, 40), (8, 40, 72)];

fn replay_at(chassis: u8, n_jobs: usize, quota: usize, workers: usize) -> Vec<ScheduleReport> {
    let topo = RackTopology::with_chassis(chassis);
    let cfg = SchedulerConfig { quota_gpus_per_tenant: quota, ..SchedulerConfig::default() };
    // A fresh cache each call: the bench measures probing + replay, not
    // cache hits.
    let mut cache = ProbeCache::new_for(cfg.probe_iters, topo);
    compare_policies_cached_on(
        topo,
        &trace::seeded_two_tenant(n_jobs, 0xC10D),
        all_policies(),
        &cfg,
        workers,
        &mut cache,
    )
    .expect("trace drains under every policy at every scale")
}

/// Probe-derived samples/sec for `bench` on `n` GPUs, using the same
/// per-GPU batch clamp the probe itself applies. Up to 16 GPUs fills one
/// chassis (both drawers); 32 spans two chassis and pays the rack-tier
/// stretch — exactly how the scheduler prices rack-spanning gangs.
fn probe_throughput(bench: Benchmark, n: usize, probes: &mut ProbeCache) -> f64 {
    let per_chassis = n.min(16);
    let shape = Shape::new(per_chassis.min(8) as u8, per_chassis.saturating_sub(8) as u8);
    let mut iter_ns = probes.price(bench, shape).mean_iter.as_nanos() as f64;
    if n > 16 {
        iter_ns *= cross_chassis_stretch(n.div_ceil(16), 100);
    }
    let gpu = GpuSpec::v100_pcie_16gb();
    let cfg = JobConfig::paper_scaled(bench, n, 8);
    let model = model_for(bench);
    let fit = max_feasible_batch(&model, gpu.memory_bytes, cfg.precision, cfg.strategy, n);
    let batch = cfg.per_gpu_batch.min(fit).max(1);
    (n as u64 * batch) as f64 / (iter_ns / 1e9)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = Suite::with_opts(
        "cluster_scale",
        BenchOpts {
            warmup_iters: 1,
            iters: 5,
        },
    );

    let desim_stats = s
        .bench("desim_event_loop_100k_events", || {
            black_box(desim_event_chain())
        })
        .clone();
    let events_per_sec = DESIM_EVENTS as f64 / (desim_stats.median_ns as f64 / 1e9);
    println!("  -> {events_per_sec:.0} events/sec (median)");

    // The directional claim, asserted before any timing is reported: at
    // 32 GPUs the cross-chassis stretch makes rack-spanning gangs
    // expensive, so the policies that price it must beat first-fit.
    let reports32 = replay_at(2, 32, 20, 4);
    let jct = |name: &str| {
        reports32
            .iter()
            .find(|r| r.policy == name)
            .expect("policy ran at 32 GPUs")
            .mean_jct
            .as_secs_f64()
    };
    let fifo = jct("fifo-first-fit");
    for smart in ["frag-aware", "topology-aware"] {
        assert!(
            jct(smart) < fifo,
            "{smart} must beat fifo-first-fit on mean JCT at 32 GPUs: \
             {:.2}s vs {fifo:.2}s",
            jct(smart)
        );
    }
    println!(
        "  -> 32-GPU mean JCT: fifo {fifo:.2}s, frag-aware {:.2}s, topology-aware {:.2}s",
        jct("frag-aware"),
        jct("topology-aware")
    );

    // The GigaIO-shaped rows: per-benchmark strong-scaling speedups at
    // 1..32 GPUs derived from the probe oracle, so the report carries
    // the composable *scaling curve*, not just scheduler wall-clock.
    let mut curve_fields: Vec<(String, Value)> = Vec::new();
    let mut probes = ProbeCache::new(3);
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    for bench in Benchmark::all() {
        let base = probe_throughput(bench, 1, &mut probes);
        let mut row = Vec::new();
        for n in [1usize, 2, 4, 8, 16, 32] {
            let speedup = probe_throughput(bench, n, &mut probes) / base;
            row.push(Value::Num(round2(speedup)));
        }
        let at32 = row.last().expect("six points").as_f64().expect("num");
        curve_fields.push((format!("scaling_{}_speedup_1_2_4_8_16_32", bench.label()), Value::Arr(row)));
        curve_fields.push((
            format!("scaling_{}_efficiency_32", bench.label()),
            Value::Num(round2(at32 / 32.0)),
        ));
    }

    let mut scale_fields: Vec<(String, Value)> = Vec::new();
    for (chassis, n_jobs, quota) in SCALES {
        let gpus = RackTopology::with_chassis(chassis).total_gpus();
        let stats = s
            .bench(&format!("rack_replay_{gpus}_gpus_{chassis}_chassis"), || {
                let reports = replay_at(chassis, n_jobs, quota, 4);
                assert!(reports.iter().all(|r| r.pool_gpus as usize == gpus));
                black_box(reports.len())
            })
            .clone();
        scale_fields.push((format!("scale{gpus}_median_ns"), Value::from_u64(stats.median_ns as u64)));
        scale_fields.push((format!("scale{gpus}_chassis"), Value::from_u64(u64::from(chassis))));
        scale_fields.push((format!("scale{gpus}_trace_jobs"), Value::from_u64(n_jobs as u64)));
        if gpus == 32 {
            // Policy fan-out speedup at the asserted scale, through the
            // shared suppression convention for 1-core hosts.
            let jobs1 = s
                .bench("rack_replay_32_gpus_jobs1", || {
                    black_box(replay_at(chassis, n_jobs, quota, 1).len())
                })
                .clone();
            let ratio = jobs1.median_ns as f64 / stats.median_ns as f64;
            println!("  -> 32-GPU policy fan-out: {ratio:.2}x jobs4 vs jobs1");
            scale_fields.push((
                "scale32_fanout_speedup".to_string(),
                testkit::bench::speedup_or_null(cores, ratio),
            ));
        }
    }

    let mut fields: Vec<(&str, Value)> = vec![
        ("suite", Value::str("cluster-scale")),
        ("host_parallelism", Value::from_u64(cores as u64)),
        ("desim_events_per_sec", Value::Num(events_per_sec.round())),
        ("desim_100k_events_median_ns", Value::from_u64(desim_stats.median_ns as u64)),
    ];
    let scale_fields: Vec<(String, Value)> = scale_fields;
    for (k, v) in &scale_fields {
        fields.push((k.as_str(), v.clone()));
    }
    for (k, v) in &curve_fields {
        fields.push((k.as_str(), v.clone()));
    }
    fields.push((
        "note",
        Value::str(
            "one full policy-portfolio replay per scale (4 workers, fresh probe cache); \
             at 32 GPUs frag-aware and topology-aware beating fifo-first-fit on mean JCT \
             is asserted, not just recorded; scaling_* rows are probe-derived per-model \
             strong-scaling speedups at [1,2,4,8,16,32] GPUs (32 spans two chassis and \
             pays the rack-tier stretch)",
        ),
    ));
    let baseline = Value::obj(fields).emit_pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster_scale.json");
    std::fs::write(path, baseline + "\n").expect("write BENCH_cluster_scale.json");
    println!("baseline written to BENCH_cluster_scale.json");
}
