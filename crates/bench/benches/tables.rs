//! Criterion benches for the paper's tables.
//!
//! * `table2_model_zoo` — building all five benchmark models layer-by-layer
//!   and deriving their Table II characteristics.
//! * `table4_p2p_*` — the GPU-pair microbenchmarks of Table IV, run as
//!   full flow simulations on the composed topology.

use bench::experiments::table4_measured;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn table2_model_zoo(c: &mut Criterion) {
    c.bench_function("table2_model_zoo", |b| {
        b.iter(|| {
            let models = dlmodels::paper_benchmarks();
            let total: u64 = models.iter().map(|m| m.param_count()).sum();
            black_box(total)
        })
    });
}

fn table4_p2p(c: &mut Criterion) {
    c.bench_function("table4_p2p_probes", |b| {
        b.iter(|| black_box(table4_measured()))
    });
}

fn config(c: &mut Criterion) -> &mut Criterion {
    c
}

criterion_group! {
    name = tables;
    config = {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(std::time::Duration::from_secs(4))
            .warm_up_time(std::time::Duration::from_millis(500));
        let _ = config(&mut c);
        c
    };
    targets = table2_model_zoo, table4_p2p
}
criterion_main!(tables);
