//! Benches for the paper's tables (testkit harness).
//!
//! * `table2_model_zoo` — building all five benchmark models layer-by-layer
//!   and deriving their Table II characteristics.
//! * `table4_p2p_probes` — the GPU-pair microbenchmarks of Table IV, run as
//!   full flow simulations on the composed topology.

use bench::experiments::table4_measured;
use testkit::bench::{black_box, BenchOpts, Suite};

fn main() {
    let mut s = Suite::with_opts(
        "tables",
        BenchOpts {
            warmup_iters: 2,
            iters: 10,
        },
    );

    s.bench("table2_model_zoo", || {
        let models = dlmodels::paper_benchmarks();
        let total: u64 = models.iter().map(|m| m.param_count()).sum();
        black_box(total)
    });

    s.bench("table4_p2p_probes", || black_box(table4_measured()));
}
