//! Benches regenerating each figure of the evaluation section (testkit
//! harness).
//!
//! Every bench runs the figure's underlying simulation at a minimal scale
//! (the relative quantities are steady-state properties, unchanged by the
//! scale) and *asserts the paper's shape* before returning, so `cargo
//! bench` doubles as a reproduction check.

use bench::experiments::{self, Scale};
use composable_core::runner::{run, ExperimentOpts};
use composable_core::HostConfig;
use dlmodels::Benchmark;
use testkit::bench::{black_box, BenchOpts, Suite};

fn tiny() -> Scale {
    Scale {
        iters: 4,
        epochs: Some(1),
        checkpoints: false,
    }
}

fn main() {
    let mut s = Suite::with_opts(
        "figures",
        BenchOpts {
            warmup_iters: 1,
            iters: 10,
        },
    );

    s.bench("fig9_gpu_util_traces", || {
        let runs = experiments::fig9(Scale {
            iters: 6,
            epochs: Some(2),
            checkpoints: true,
        });
        assert_eq!(runs.len(), 5);
        black_box(runs.into_iter().map(|(_, r)| r.gpu_util).sum::<f64>())
    });

    s.bench("fig10_14_metric_grid", || {
        let g = experiments::grid(tiny());
        // Fig 13 shape: vision uses more CPU than NLP.
        let cpu = |bm: Benchmark| {
            experiments::fig13(&g)
                .into_iter()
                .find(|(b2, c2, _)| *b2 == bm && *c2 == HostConfig::LocalGpus)
                .unwrap()
                .2
        };
        assert!(cpu(Benchmark::MobileNetV2) > cpu(Benchmark::BertLarge));
        // Fig 14 shape: host memory untaxed.
        assert!(experiments::fig14(&g).iter().all(|&(_, _, u)| u < 0.5));
        black_box(g.len())
    });

    s.bench("fig11_falcon_overhead", || {
        let opts = ExperimentOpts::scaled(4).without_checkpoints();
        let local = run(Benchmark::BertLarge, HostConfig::LocalGpus, &opts).unwrap();
        let falcon = run(Benchmark::BertLarge, HostConfig::FalconGpus, &opts).unwrap();
        let ratio = falcon.mean_iter.as_secs_f64() / local.mean_iter.as_secs_f64();
        assert!((1.6..2.4).contains(&ratio), "BERT-L ~2x: {ratio}");
        black_box(ratio)
    });

    s.bench("fig12_pcie_traffic", || {
        let opts = ExperimentOpts::scaled(4).without_checkpoints();
        let r = run(Benchmark::BertLarge, HostConfig::FalconGpus, &opts).unwrap();
        assert!(r.falcon_pcie_rate > 40e9, "BERT-L traffic {}", r.falcon_pcie_rate);
        black_box(r.falcon_pcie_rate)
    });

    s.bench("fig15_storage_study", || {
        let rows = experiments::fig15(Scale {
            iters: 8,
            epochs: Some(2),
            checkpoints: true,
        });
        // NVMe never hurts.
        assert!(rows.iter().all(|&(_, _, pct)| pct < 2.0));
        black_box(rows.len())
    });

    s.bench("fig16_software_optimizations", || {
        let rows = experiments::fig16(tiny());
        let thr = |cfg: HostConfig, v: &str| {
            rows.iter()
                .find(|r| r.config == cfg && r.variant == v)
                .unwrap()
                .throughput
        };
        assert!(
            thr(HostConfig::LocalGpus, "DDP fp16") > 2.0 * thr(HostConfig::LocalGpus, "DDP fp32")
        );
        black_box(rows.len())
    });
}
