//! Serving benches (testkit harness): replay the pinned 16-job + 8-service
//! PAI-style mix under the full serving-policy portfolio and check the
//! headline claim of the serving subsystem:
//!
//! * `slo-aware-pack` meets ≥ 0.95 pooled SLO attainment on a mix where
//!   `fifo-first-fit` does not, at equal-or-better training mean JCT;
//! * reports are byte-identical at `--jobs 1` vs `--jobs 4`;
//! * mixed-replay wall-clock and simulated request throughput.
//!
//! Results are also written to `BENCH_serve.json` at the workspace root —
//! the checked-in perf + quality baseline the README serving table cites.

use desim::json::Value;
use scheduler::{
    seeded_pai_mix, serving_policies, ProbeCache, ScheduleReport, SchedulerConfig,
};
use testkit::bench::{black_box, BenchOpts, Suite};

const N_JOBS: usize = 16;
const N_SERVICES: usize = 8;
const SEED: u64 = 0xC10D;

fn replay_portfolio(jobs: usize) -> Vec<ScheduleReport> {
    // A fresh cache each call: the bench measures probing + replay, not
    // cache hits.
    let mut cache = ProbeCache::new(SchedulerConfig::default().probe_iters);
    scheduler::compare_policies_mixed(
        &seeded_pai_mix(N_JOBS, N_SERVICES, SEED),
        serving_policies(),
        &SchedulerConfig::default(),
        jobs,
        &mut cache,
    )
    .expect("mixed trace drains under every policy")
}

fn by_policy<'a>(reports: &'a [ScheduleReport], name: &str) -> &'a ScheduleReport {
    reports
        .iter()
        .find(|r| r.policy == name)
        .unwrap_or_else(|| panic!("policy {name} missing from portfolio"))
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = Suite::with_opts(
        "serve",
        BenchOpts {
            warmup_iters: 1,
            iters: 5,
        },
    );

    // Byte-identity across worker counts is asserted once up front so a
    // regression fails loudly before any timing is reported.
    let serial: Vec<String> = replay_portfolio(1).iter().map(|r| r.to_json_string()).collect();
    let reports = replay_portfolio(4);
    let parallel: Vec<String> = reports.iter().map(|r| r.to_json_string()).collect();
    assert_eq!(serial, parallel, "jobs=4 mixed replay must be byte-identical to jobs=1");

    // The subsystem's headline claim, frozen as a bench assertion: on a
    // contended mix the SLO-aware policy holds attainment that the FIFO
    // baseline gives up, without paying for it in training completion.
    let pack = by_policy(&reports, "slo-aware-pack");
    let fifo = by_policy(&reports, "fifo-first-fit");
    let (pack_s, fifo_s) = (
        pack.serve.as_ref().expect("serve block"),
        fifo.serve.as_ref().expect("serve block"),
    );
    assert!(
        pack_s.attainment >= 0.95,
        "slo-aware-pack attainment {:.4} < 0.95",
        pack_s.attainment
    );
    assert!(
        fifo_s.attainment < 0.95,
        "fifo-first-fit attainment {:.4} should violate SLOs on the contended mix",
        fifo_s.attainment
    );
    assert!(
        pack.mean_jct <= fifo.mean_jct,
        "slo-aware-pack mean JCT {:?} must not exceed fifo's {:?}",
        pack.mean_jct,
        fifo.mean_jct
    );
    let requests: u64 = reports
        .iter()
        .map(|r| r.serve.as_ref().map_or(0, |m| m.generated))
        .sum();
    println!(
        "  -> attainment: slo-aware-pack {:.4} vs fifo-first-fit {:.4}; \
         mean JCT {:.1}s vs {:.1}s",
        pack_s.attainment,
        fifo_s.attainment,
        pack.mean_jct.as_secs_f64(),
        fifo.mean_jct.as_secs_f64()
    );

    let replay1 = s
        .bench("mixed_replay_16j8s_portfolio_jobs1", || {
            black_box(replay_portfolio(1).len())
        })
        .clone();
    let replay4 = s
        .bench("mixed_replay_16j8s_portfolio_jobs4", || {
            black_box(replay_portfolio(4).len())
        })
        .clone();
    let speedup = replay1.median_ns as f64 / replay4.median_ns as f64;
    let req_per_sec = requests as f64 / (replay4.median_ns as f64 / 1e9);
    println!("  -> mixed replay speedup jobs4/jobs1: {speedup:.2}x on {cores} core(s)");
    println!("  -> {req_per_sec:.0} simulated requests/sec across the portfolio (jobs=4)");

    let baseline = Value::obj(vec![
        ("suite", Value::str("serve")),
        ("host_parallelism", Value::from_u64(cores as u64)),
        ("mix", Value::str(format!("pai-mix-{N_JOBS}j{N_SERVICES}s-{SEED:#x}"))),
        ("requests_per_portfolio", Value::from_u64(requests)),
        ("slo_aware_pack_attainment", Value::Num((pack_s.attainment * 1e4).round() / 1e4)),
        ("fifo_first_fit_attainment", Value::Num((fifo_s.attainment * 1e4).round() / 1e4)),
        (
            "slo_aware_pack_mean_jct_s",
            Value::Num((pack.mean_jct.as_secs_f64() * 100.0).round() / 100.0),
        ),
        (
            "fifo_first_fit_mean_jct_s",
            Value::Num((fifo.mean_jct.as_secs_f64() * 100.0).round() / 100.0),
        ),
        ("mixed_replay_jobs1_median_ns", Value::from_u64(replay1.median_ns as u64)),
        ("mixed_replay_jobs4_median_ns", Value::from_u64(replay4.median_ns as u64)),
        ("mixed_replay_speedup", Value::Num((speedup * 100.0).round() / 100.0)),
        ("simulated_requests_per_sec", Value::Num(req_per_sec.round())),
        (
            "note",
            Value::str(
                "attainment/JCT figures are bench-asserted: slo-aware-pack holds >= 0.95 \
                 where fifo-first-fit does not, at equal-or-better training mean JCT; \
                 reports are byte-identical at any worker count",
            ),
        ),
    ])
    .emit_pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, baseline + "\n").expect("write BENCH_serve.json");
    println!("baseline written to BENCH_serve.json");
}
