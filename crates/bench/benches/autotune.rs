//! Policy-search bench (testkit harness): the frozen tuned artifact in
//! `golden/tuned_default.json` regenerated from scratch and held to its
//! claims. Three things are **asserted** before any timing is reported:
//!
//! 1. **Reproducibility** — re-running `tune()` at the artifact's own
//!    provenance (seed, budget) over `scenarios/portfolio_default/`
//!    reproduces the frozen artifact byte-for-byte, and a small-budget
//!    tune is byte-identical at `--jobs 1` and `--jobs 4`.
//! 2. **Generalization** — on the held-out `pai_magnitude` objective
//!    (10k jobs + 60 services, 128 GPUs; never seen by the search), the
//!    tuned policy strictly beats every hand-written preset.
//! 3. **Provenance** — the artifact's portfolio hash matches the
//!    checked-in portfolio directory, so the frozen params can always be
//!    traced to the exact scenario bytes that produced them.
//!
//! Results land in `BENCH_autotune.json` at the workspace root: the
//! presets-vs-tuned objective table on both the training portfolio and
//! the held-out scenario, plus search wall-clock and fan-out speedup.

use autotune::{objective, tune, Portfolio, SearchSpec};
use desim::json::Value;
use scheduler::{
    run_scenario_with_policy, ParamPolicy, PolicyParams, ProbeCache, Scenario, POLICY_NAMES,
};
use testkit::bench::{black_box, BenchOpts, Suite};

fn load_pai_magnitude() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/pai_magnitude.json");
    let text = std::fs::read_to_string(path).expect("scenarios/pai_magnitude.json is checked in");
    let sc = Scenario::from_json_str(&text).expect("pai_magnitude parses");
    sc.validate().expect("pai_magnitude validates");
    sc
}

/// Held-out objective for one policy on `pai_magnitude`, normalized by
/// the fifo baseline's mean JCT exactly as the search oracle does.
fn pai_objective(sc: &Scenario, p: PolicyParams, base_jct: desim::Dur, cache: &mut ProbeCache) -> f64 {
    let policy = Box::new(ParamPolicy::new(p).expect("params validate"));
    let r = run_scenario_with_policy(sc, policy, cache).expect("pai_magnitude drains");
    objective(&r, base_jct)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = Suite::with_opts("autotune", BenchOpts { warmup_iters: 1, iters: 3 });

    // The frozen artifact and the portfolio it claims to come from.
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/tuned_default.json");
    let golden = std::fs::read_to_string(golden_path).expect("golden/tuned_default.json is frozen");
    let art = Value::parse(&golden).expect("frozen artifact parses");
    let tuned_params = PolicyParams::from_json(art.get("params").expect("artifact has params"))
        .expect("frozen params parse");
    let prov = art.get("provenance").expect("artifact has provenance");
    let seed = prov.get("seed").and_then(Value::as_u64).expect("seed pinned");
    let budget = prov.get("budget").and_then(Value::as_u64).expect("budget pinned") as usize;
    let frozen_hash = prov.get("portfolio_hash").and_then(Value::as_str).expect("hash pinned");

    let pf_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/portfolio_default");
    let pf = Portfolio::load_dir(std::path::Path::new(pf_dir)).expect("default portfolio loads");
    assert_eq!(
        pf.hash_hex(),
        frozen_hash,
        "portfolio_default changed under the frozen artifact; re-run \
         `repro autotune scenarios/portfolio_default --budget {budget} --seed {seed}` \
         and refreeze golden/tuned_default.json"
    );

    // Reproducibility, asserted before any timing: the frozen bytes fall
    // out of a fresh search at the pinned provenance, and a small-budget
    // search cannot be perturbed by the worker count.
    let spec = SearchSpec { seed, budget };
    let mut cache = ProbeCache::new(pf.probe_iters());
    let regrown = tune(&pf, &spec, 4, &mut cache).expect("full-budget tune runs");
    assert_eq!(
        regrown.to_json_string(),
        golden,
        "tune() at the frozen provenance must reproduce golden/tuned_default.json \
         byte-for-byte"
    );
    println!("  -> frozen artifact reproduced (seed {seed}, budget {budget})");

    let small = SearchSpec { seed: 3, budget: 24 };
    let small_tune = |jobs: usize| {
        let mut cache = ProbeCache::new(pf.probe_iters());
        tune(&pf, &small, jobs, &mut cache).expect("small tune runs").to_json_string()
    };
    assert_eq!(
        small_tune(1),
        small_tune(4),
        "tune() must be byte-identical at --jobs 1 and --jobs 4"
    );
    println!("  -> --jobs 1 vs --jobs 4: byte-identical");

    // Generalization, the tentpole claim: on the held-out pai_magnitude
    // objective the tuned policy strictly beats every hand-written
    // preset. The search never saw this scenario — pf_pai in the
    // portfolio is a 2k-job cut at the same scale, not this trace.
    let sc = load_pai_magnitude();
    let mut pai_cache = ProbeCache::new(sc.config.probe_iters);
    let fifo = Box::new(ParamPolicy::preset("fifo-first-fit").expect("preset exists"));
    let base_jct =
        run_scenario_with_policy(&sc, fifo, &mut pai_cache).expect("fifo baseline drains").mean_jct;

    let mut preset_rows: Vec<(&str, f64)> = Vec::new();
    let mut best_preset = ("", f64::INFINITY);
    for name in POLICY_NAMES {
        let p = PolicyParams::preset(name).expect("preset exists");
        let o = pai_objective(&sc, p, base_jct, &mut pai_cache);
        println!("  -> pai_magnitude {name:16} objective {o:.6}");
        if o < best_preset.1 {
            best_preset = (name, o);
        }
        preset_rows.push((name, o));
    }
    let tuned_pai = pai_objective(&sc, tuned_params.clone(), base_jct, &mut pai_cache);
    println!(
        "  -> pai_magnitude tuned            objective {tuned_pai:.6} \
         (best preset {} at {:.6})",
        best_preset.0, best_preset.1
    );
    assert!(
        tuned_pai < best_preset.1,
        "tuned policy must strictly beat the best preset on the held-out \
         pai_magnitude objective: tuned {tuned_pai:.6} vs {} {:.6}",
        best_preset.0,
        best_preset.1
    );

    // Timings: the full-budget search, plus the fan-out speedup through
    // the shared suppression convention on 1-core hosts.
    let tune_at = |jobs: usize| {
        let mut cache = ProbeCache::new(pf.probe_iters());
        tune(&pf, &spec, jobs, &mut cache).expect("tune runs").objective
    };
    let t1 = s.bench("tune_full_budget_jobs1", || black_box(tune_at(1))).clone();
    let (jobs4_speedup, fanout_note) = if cores >= 2 {
        let t4 = s.bench("tune_full_budget_jobs4", || black_box(tune_at(4))).clone();
        let ratio = t1.median_ns as f64 / t4.median_ns as f64;
        println!("  -> tune --jobs 4: {ratio:.2}x vs --jobs 1");
        (
            testkit::bench::speedup_or_null(cores, ratio),
            format!("candidate evaluations fanned to 4 workers on a {cores}-way host"),
        )
    } else {
        (
            testkit::bench::speedup_or_null(cores, 1.0),
            testkit::bench::suppressed_speedup_note("jobs4_speedup"),
        )
    };

    let round4 = |x: f64| (x * 10_000.0).round() / 10_000.0;
    let mut fields: Vec<(String, Value)> = vec![
        ("suite".into(), Value::str("autotune")),
        ("host_parallelism".into(), Value::from_u64(cores as u64)),
        ("portfolio_scenarios".into(), Value::from_u64(pf.scenarios.len() as u64)),
        ("portfolio_hash".into(), Value::str(pf.hash_hex())),
        ("search_seed".into(), Value::from_u64(seed)),
        ("search_budget".into(), Value::from_u64(budget as u64)),
        ("search_evals".into(), Value::from_u64(regrown.evals as u64)),
        ("portfolio_tuned_objective".into(), Value::Num(round4(regrown.objective))),
        ("portfolio_best_preset".into(), Value::str(regrown.baseline_name.clone())),
        ("portfolio_best_preset_objective".into(), Value::Num(round4(regrown.baseline_objective))),
    ];
    for (name, o) in &preset_rows {
        fields.push((format!("pai_{}_objective", name.replace('-', "_")), Value::Num(round4(*o))));
    }
    fields.push(("pai_tuned_objective".into(), Value::Num(round4(tuned_pai))));
    fields.push((
        "pai_tuned_margin_vs_best_preset".into(),
        Value::Num(round4(best_preset.1 - tuned_pai)),
    ));
    fields.push(("tune_median_ns".into(), Value::from_u64(t1.median_ns as u64)));
    fields.push(("jobs4_speedup".into(), jobs4_speedup));
    fields.push(("fanout_note".into(), Value::str(fanout_note)));
    fields.push((
        "note".into(),
        Value::str(
            "seeded successive-halving + coordinate-descent over the policy lattice, \
             scored on scenarios/portfolio_default (4 scenarios); reproducing the \
             frozen golden byte-for-byte, --jobs 1 == --jobs 4 bytes, and the tuned \
             policy strictly beating every preset on the held-out pai_magnitude \
             objective are asserted, not just recorded",
        ),
    ));
    let fields: Vec<(&str, Value)> = fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let baseline = Value::obj(fields).emit_pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_autotune.json");
    std::fs::write(path, baseline + "\n").expect("write BENCH_autotune.json");
    println!("baseline written to BENCH_autotune.json");
}
