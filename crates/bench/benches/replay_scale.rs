//! Production-scale replay bench (testkit harness): the PAI-magnitude
//! mixed workload from `scenarios/pai_magnitude.json` — 10k training
//! jobs, 48 bursty services, and 12 long-lived high-rate services on the
//! full 128-GPU rack — replayed under the PR-era event loop semantics
//! (full conservation audit every event, global fault repricing, every
//! serving micro-event through the global loop) and under the current
//! engine (amortized ledger audits, fault-scoped repricing,
//! epoch-sharded serving with service retirement). Both legs replay the
//! *same* trace, so the events/sec ratio is exactly the speedup, and the
//! bench **asserts** it stays >= 5x — the replay-engine work is a pinned
//! property, not a vibe.
//!
//! Also asserted here, before any timing is reported: the optimized
//! engine is worker-count independent (`--jobs 1` and `--jobs 4` produce
//! byte-identical reports on this exact workload).
//!
//! Results land in `BENCH_replay_scale.json` at the workspace root:
//! trace events/sec for both engine legs, the asserted speedup, and the
//! intra-replay sharding ratio at 4 workers (null, with a note, on
//! single-core hosts where there is no parallelism to measure).

use desim::json::Value;
use scheduler::{
    policy_by_name, request_times, ClusterSim, MixedTrace, ProbeCache, RackTopology,
    Scenario, ScheduleReport, SchedulerConfig,
};
use testkit::bench::{black_box, BenchOpts, Suite};

/// The asserted floor on the engine speedup. Measured headroom is well
/// above this on an idle host; the floor leaves room for CI noise.
const MIN_SPEEDUP: f64 = 5.0;

fn load_pai_magnitude() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/pai_magnitude.json");
    let text = std::fs::read_to_string(path).expect("scenarios/pai_magnitude.json is checked in");
    let sc = Scenario::from_json_str(&text).expect("pai_magnitude parses");
    sc.validate().expect("pai_magnitude validates");
    sc
}

/// PR-era semantics: exhaustive audit every event, global fault
/// repricing, every serving micro-event through the global loop.
fn baseline_config(sc: &Scenario) -> SchedulerConfig {
    SchedulerConfig {
        audit_every: 1,
        incremental_reprice: false,
        shard_serving: false,
        ..sc.config.clone()
    }
}

fn replay(
    topo: RackTopology,
    mix: &MixedTrace,
    cfg: &SchedulerConfig,
    warm: &str,
    workers: usize,
) -> ScheduleReport {
    let cache = ProbeCache::load_str_for(warm, cfg.probe_iters, topo);
    let policy = policy_by_name("slo-aware-pack").expect("slo-aware-pack is registered");
    ClusterSim::with_probe_cache_mixed_on(topo, mix.clone(), policy, cfg.clone(), cache)
        .expect("pai-magnitude trace admits")
        .with_workers(workers)
        .run()
        .expect("pai-magnitude trace drains")
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = Suite::with_opts("replay_scale", BenchOpts { warmup_iters: 1, iters: 3 });

    let sc = load_pai_magnitude();
    let topo = sc.topology.rack();
    let (mix, plan) = sc.materialize();
    assert!(plan.is_empty(), "pai_magnitude is fault-free; wire the plan in if that changes");
    // The workload's event count: one arrival + one finish per training
    // job, plus every generated inference request. Identical for both
    // engine legs by construction, so the events/sec ratio is the
    // wall-clock ratio.
    let requests: usize = mix.services.iter().map(|sp| request_times(sp).len()).sum();
    let trace_events = (mix.jobs.len() * 2 + requests) as u64;
    println!(
        "  -> {trace_events} trace events ({} jobs, {} services, {requests} requests)",
        mix.jobs.len(),
        mix.services.len()
    );

    // Warm the probe cache once (probing is deterministic and identical
    // for both legs; the bench times the replay, not the probes).
    let warm = {
        let cache = ProbeCache::new_for(sc.config.probe_iters, topo);
        let policy = policy_by_name("slo-aware-pack").expect("slo-aware-pack is registered");
        let (_, cache) = ClusterSim::with_probe_cache_mixed_on(
            topo,
            mix.clone(),
            policy,
            sc.config.clone(),
            cache,
        )
        .expect("warm-up replay admits")
        .run_report()
        .expect("warm-up replay drains");
        cache.save_json()
    };

    // Worker-count independence, asserted before any timing: the epoch-
    // sharded serving engine must not let the fan-out change a byte.
    let one = replay(topo, &mix, &sc.config, &warm, 1).to_json_string();
    let four = replay(topo, &mix, &sc.config, &warm, 4).to_json_string();
    assert_eq!(one, four, "sharded replay must be byte-identical at --jobs 1 and --jobs 4");
    println!("  -> --jobs 1 vs --jobs 4: byte-identical");

    let base_cfg = baseline_config(&sc);
    let base = s
        .bench("pai_magnitude_baseline_semantics", || {
            black_box(replay(topo, &mix, &base_cfg, &warm, 1).n_jobs)
        })
        .clone();
    let opt = s
        .bench("pai_magnitude_optimized", || {
            black_box(replay(topo, &mix, &sc.config, &warm, 1).n_jobs)
        })
        .clone();

    let eps = |median_ns: u128| trace_events as f64 / (median_ns as f64 / 1e9);
    let (base_eps, opt_eps) = (eps(base.median_ns), eps(opt.median_ns));
    let speedup = base.median_ns as f64 / opt.median_ns as f64;
    println!(
        "  -> baseline {base_eps:.0} events/sec, optimized {opt_eps:.0} events/sec ({speedup:.1}x)"
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "replay-engine speedup regressed: {speedup:.2}x < {MIN_SPEEDUP}x \
         (baseline median {} ns, optimized median {} ns)",
        base.median_ns,
        opt.median_ns
    );

    // Intra-replay sharding: the same optimized replay with serving
    // epochs fanned across 4 workers. On a single-core host there is no
    // parallelism to measure, so the field is null and the note says why.
    let (shard4, shard_note) = if cores >= 2 {
        let four = s
            .bench("pai_magnitude_optimized_jobs4", || {
                black_box(replay(topo, &mix, &sc.config, &warm, 4).n_jobs)
            })
            .clone();
        let ratio = opt.median_ns as f64 / four.median_ns as f64;
        println!("  -> --jobs 4 epoch sharding: {ratio:.2}x vs --jobs 1");
        (
            testkit::bench::speedup_or_null(cores, ratio),
            format!("epoch sharding at 4 workers on a {cores}-way host"),
        )
    } else {
        (
            testkit::bench::speedup_or_null(cores, 1.0),
            testkit::bench::suppressed_speedup_note("sharding speedup"),
        )
    };

    let fields: Vec<(&str, Value)> = vec![
        ("suite", Value::str("replay-scale")),
        ("host_parallelism", Value::from_u64(cores as u64)),
        ("trace_events", Value::from_u64(trace_events)),
        ("trace_jobs", Value::from_u64(mix.jobs.len() as u64)),
        ("trace_services", Value::from_u64(mix.services.len() as u64)),
        ("trace_requests", Value::from_u64(requests as u64)),
        ("pool_gpus", Value::from_u64(128)),
        ("baseline_median_ns", Value::from_u64(base.median_ns as u64)),
        ("optimized_median_ns", Value::from_u64(opt.median_ns as u64)),
        ("baseline_events_per_sec", Value::Num(base_eps.round())),
        ("optimized_events_per_sec", Value::Num(opt_eps.round())),
        ("speedup", Value::Num((speedup * 100.0).round() / 100.0)),
        ("min_speedup_asserted", Value::Num(MIN_SPEEDUP)),
        ("jobs4_speedup", shard4),
        ("jobs4_note", Value::str(shard_note)),
        (
            "note",
            Value::str(
                "pai-magnitude mixed workload (10k jobs + 60 services, 128 GPUs) replayed \
                 under PR-era semantics (audit every event, global repricing, unsharded \
                 serving) vs the current engine; >= 5x events/sec and --jobs 1 == --jobs 4 \
                 bytes are asserted, not just recorded",
            ),
        ),
    ];
    let baseline = Value::obj(fields).emit_pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay_scale.json");
    std::fs::write(path, baseline + "\n").expect("write BENCH_replay_scale.json");
    println!("baseline written to BENCH_replay_scale.json");
}
