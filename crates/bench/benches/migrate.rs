//! Preemption/migration bench (testkit harness): the pinned
//! `scenarios/cluster_priority.json` study — a contended two-chassis
//! PAI-style mix where ~20% of jobs arrive at the high tier — replayed
//! against its no-priority baseline: the *same* jobs, arrivals, and
//! sizes with every tier flattened to low and every priority knob off,
//! i.e. plain arrival-order scheduling with no preemption. Both legs run
//! the same policy, so the per-tier mean-JCT ratios (per job id, tiers
//! taken from the real trace) are exactly the cost/benefit of the
//! priority machinery, and the bench **asserts** the tentpole claim:
//! high-tier mean JCT improves by at least [`MIN_HIGH_TIER_GAIN`] while
//! low-tier mean JCT inflates by at most [`MAX_LOW_TIER_INFLATION`] — a
//! pinned property, not a vibe.
//!
//! Also asserted before any timing: the priority-enabled replay is
//! worker-count independent (`--jobs 1` and `--jobs 4` produce
//! byte-identical reports on this exact workload).
//!
//! Results land in `BENCH_migrate.json` at the workspace root: per-tier
//! mean JCTs for both legs, the asserted ratios, and the preemption /
//! migration counters of the enabled leg.

use desim::json::Value;
use scheduler::{
    policy_by_name, ClusterSim, ProbeCache, RackTopology, Scenario, ScheduleReport,
    SchedulerConfig, Trace,
};
use testkit::bench::{black_box, BenchOpts, Suite};

/// The asserted floor on the high-tier improvement: preemption must cut
/// high-tier mean JCT by at least this fraction vs the baseline.
const MIN_HIGH_TIER_GAIN: f64 = 0.20;

/// The asserted ceiling on the low-tier cost: preempted low-tier jobs may
/// see mean JCT inflate by at most this factor.
const MAX_LOW_TIER_INFLATION: f64 = 1.5;

fn load_cluster_priority() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/cluster_priority.json");
    let text =
        std::fs::read_to_string(path).expect("scenarios/cluster_priority.json is checked in");
    let sc = Scenario::from_json_str(&text).expect("cluster_priority parses");
    sc.validate().expect("cluster_priority validates");
    assert!(
        sc.config.preempt,
        "cluster_priority is the preemption study; its preempt knob must be on"
    );
    sc
}

/// The same study with every priority lever off: arrivals queue behind
/// whatever is running, exactly the pre-priority engine.
fn baseline_config(sc: &Scenario) -> SchedulerConfig {
    SchedulerConfig {
        preempt: false,
        defrag: false,
        relocate_slo: false,
        ..sc.config.clone()
    }
}

fn replay(
    topo: RackTopology,
    trace: &Trace,
    policy_name: &str,
    cfg: &SchedulerConfig,
    warm: &str,
    workers: usize,
) -> ScheduleReport {
    let cache = ProbeCache::load_str_for(warm, cfg.probe_iters, topo);
    let policy = policy_by_name(policy_name).expect("pinned policy is registered");
    ClusterSim::with_probe_cache_on(topo, trace.clone(), policy, cfg.clone(), cache)
        .expect("cluster_priority trace admits")
        .with_workers(workers)
        .run()
        .expect("cluster_priority trace drains")
}

/// Mean JCT over the jobs the *real* trace puts at `tier`, selected by
/// job id so the flattened baseline leg groups identically.
fn tier_mean_jct_secs(r: &ScheduleReport, trace: &Trace, tier: u8) -> f64 {
    let jcts: Vec<f64> = r
        .jobs
        .iter()
        .filter(|o| trace.jobs.iter().any(|j| j.id == o.id && j.priority == tier))
        .map(|o| o.jct().as_secs_f64())
        .collect();
    assert!(!jcts.is_empty(), "the seeded mix must draw tier-{tier} jobs");
    jcts.iter().sum::<f64>() / jcts.len() as f64
}

fn main() {
    let mut s = Suite::with_opts("migrate", BenchOpts { warmup_iters: 1, iters: 3 });

    let sc = load_cluster_priority();
    let topo = sc.topology.rack();
    let (mix, plan) = sc.materialize();
    assert!(plan.is_empty(), "cluster_priority is fault-free; wire the plan in if that changes");
    let trace = mix.training();
    let policy_name = sc.policies[0].clone();
    // The no-priority baseline workload: identical jobs with every tier
    // flattened to low, so the queue is plain arrival order and nothing
    // can preempt — the pre-tier engine's behavior on this mix.
    let flat = Trace {
        name: trace.name.clone(),
        jobs: trace
            .jobs
            .iter()
            .cloned()
            .map(|mut j| {
                j.priority = 1;
                j
            })
            .collect(),
    };

    // Warm the probe cache once (probing is deterministic and identical
    // for both legs; the bench times the replay, not the probes).
    let warm = {
        let cache = ProbeCache::new_for(sc.config.probe_iters, topo);
        let policy = policy_by_name(&policy_name).expect("pinned policy is registered");
        let (_, cache) =
            ClusterSim::with_probe_cache_on(topo, trace.clone(), policy, sc.config.clone(), cache)
                .expect("warm-up replay admits")
                .run_report()
                .expect("warm-up replay drains");
        cache.save_json()
    };

    // Worker-count independence, asserted before any timing: preemption
    // and migration decisions must not let the fan-out change a byte.
    let tiered = replay(topo, &trace, &policy_name, &sc.config, &warm, 1);
    let four = replay(topo, &trace, &policy_name, &sc.config, &warm, 4);
    assert_eq!(
        tiered.to_json_string(),
        four.to_json_string(),
        "priority replay must be byte-identical at --jobs 1 and --jobs 4"
    );
    println!("  -> --jobs 1 vs --jobs 4: byte-identical");

    let base_cfg = baseline_config(&sc);
    let base = replay(topo, &flat, &policy_name, &base_cfg, &warm, 1);
    assert!(base.migration.is_none(), "knob-free baseline must not report migration metrics");
    let mig = tiered.migration.as_ref().expect("priority leg reports migration metrics");
    assert!(mig.preemptions > 0, "the pinned study must actually preempt");

    let (base_high, base_low) =
        (tier_mean_jct_secs(&base, &trace, 2), tier_mean_jct_secs(&base, &trace, 1));
    let (high, low) =
        (tier_mean_jct_secs(&tiered, &trace, 2), tier_mean_jct_secs(&tiered, &trace, 1));
    let gain = 1.0 - high / base_high;
    let inflation = low / base_low;
    println!(
        "  -> high-tier mean JCT {base_high:.1}s -> {high:.1}s ({:.1}% better), \
         low-tier {base_low:.1}s -> {low:.1}s ({inflation:.2}x), \
         {} preemptions / {} migrations",
        gain * 100.0,
        mig.preemptions,
        mig.migrations
    );
    assert!(
        gain >= MIN_HIGH_TIER_GAIN,
        "preemption benefit regressed: high-tier mean JCT improved only {:.1}% < {:.0}% \
         (baseline {base_high:.1}s, tiered {high:.1}s)",
        gain * 100.0,
        MIN_HIGH_TIER_GAIN * 100.0
    );
    assert!(
        inflation <= MAX_LOW_TIER_INFLATION,
        "preemption cost regressed: low-tier mean JCT inflated {inflation:.2}x > \
         {MAX_LOW_TIER_INFLATION}x (baseline {base_low:.1}s, tiered {low:.1}s)"
    );

    let base_t = s
        .bench("cluster_priority_baseline", || {
            black_box(replay(topo, &flat, &policy_name, &base_cfg, &warm, 1).n_jobs)
        })
        .clone();
    let tier_t = s
        .bench("cluster_priority_preempt", || {
            black_box(replay(topo, &trace, &policy_name, &sc.config, &warm, 1).n_jobs)
        })
        .clone();

    // Intra-replay fan-out on the preempting leg, through the shared
    // suppression convention (null + note) on a 1-core host.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (preempt_jobs4_speedup, fanout_note) = if cores >= 2 {
        let four_t = s
            .bench("cluster_priority_preempt_jobs4", || {
                black_box(replay(topo, &trace, &policy_name, &sc.config, &warm, 4).n_jobs)
            })
            .clone();
        let ratio = tier_t.median_ns as f64 / four_t.median_ns as f64;
        println!("  -> preempt replay --jobs 4: {ratio:.2}x vs --jobs 1");
        (
            testkit::bench::speedup_or_null(cores, ratio),
            format!("preempt replay fanned to 4 workers on a {cores}-way host"),
        )
    } else {
        (
            testkit::bench::speedup_or_null(cores, 1.0),
            testkit::bench::suppressed_speedup_note("preempt_jobs4_speedup"),
        )
    };

    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let fields: Vec<(&str, Value)> = vec![
        ("suite", Value::str("migrate")),
        ("trace_jobs", Value::from_u64(trace.jobs.len() as u64)),
        ("pool_gpus", Value::from_u64(topo.total_gpus() as u64)),
        ("policy", Value::str(policy_name)),
        ("baseline_high_tier_mean_jct_s", Value::Num(round2(base_high))),
        ("preempt_high_tier_mean_jct_s", Value::Num(round2(high))),
        ("baseline_low_tier_mean_jct_s", Value::Num(round2(base_low))),
        ("preempt_low_tier_mean_jct_s", Value::Num(round2(low))),
        ("high_tier_gain", Value::Num(round2(gain))),
        ("min_high_tier_gain_asserted", Value::Num(MIN_HIGH_TIER_GAIN)),
        ("low_tier_inflation", Value::Num(round2(inflation))),
        ("max_low_tier_inflation_asserted", Value::Num(MAX_LOW_TIER_INFLATION)),
        ("preemptions", Value::from_u64(u64::from(mig.preemptions))),
        ("migrations", Value::from_u64(u64::from(mig.migrations))),
        ("work_lost_gpu_secs", Value::Num(mig.work_lost_gpu_secs)),
        ("baseline_median_ns", Value::from_u64(base_t.median_ns as u64)),
        ("preempt_median_ns", Value::from_u64(tier_t.median_ns as u64)),
        ("preempt_jobs4_speedup", preempt_jobs4_speedup),
        ("fanout_note", Value::str(fanout_note)),
        (
            "note",
            Value::str(
                "cluster_priority study (48 jobs, 2 chassis / 32 GPUs, ~20% high-tier) \
                 replayed with tiers flattened + priority knobs off (arrival-order, \
                 no-preemption baseline) vs real tiers + checkpoint preemption + \
                 migration defrag on; >= 20% high-tier mean-JCT gain, <= 1.5x low-tier \
                 inflation, and --jobs 1 == --jobs 4 bytes are asserted, not recorded",
            ),
        ),
    ];
    let baseline = Value::obj(fields).emit_pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_migrate.json");
    std::fs::write(path, baseline + "\n").expect("write BENCH_migrate.json");
    println!("baseline written to BENCH_migrate.json");
}
