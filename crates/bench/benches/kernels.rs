//! Microbenchmarks of the simulator's own hot paths: event queue
//! throughput, max-min rate recomputation under many concurrent flows,
//! routing, ring planning, and roofline aggregation. These bound how large
//! a composable-system study the simulator can sustain.

use collectives::plan_ring;
use criterion::{criterion_group, criterion_main, Criterion};
use desim::queue::EventQueue;
use desim::{Dur, Sim, SimTime};
use devices::catalog::wire_cube_mesh;
use devices::gpu::{add_gpu, GpuSpec};
use devices::Precision;
use fabric::flow::FlowCallback;
use fabric::{FabricState, FlowTag, FlowWorld, LinkClass, LinkSpec, NodeKind, Topology, GB};
use std::hint::black_box;

fn event_queue_throughput(c: &mut Criterion) {
    c.bench_function("desim_event_queue_100k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut state = 0x12345u64;
            for i in 0..100_000u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                q.push(SimTime::from_nanos(state % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn scheduler_event_rate(c: &mut Criterion) {
    c.bench_function("desim_scheduler_50k_events", |b| {
        b.iter(|| {
            struct W {
                count: u64,
            }
            fn tick(w: &mut W, sim: &mut Sim<W>) {
                w.count += 1;
                if w.count < 50_000 {
                    sim.schedule_in(Dur::from_nanos(10), tick);
                }
            }
            let mut sim: Sim<W> = Sim::new();
            let mut w = W { count: 0 };
            sim.schedule_in(Dur::from_nanos(1), tick);
            sim.run(&mut w);
            black_box(w.count)
        })
    });
}

struct FlowBench {
    fabric: FabricState<FlowBench>,
    done: usize,
}

impl FlowWorld for FlowBench {
    fn fabric(&mut self) -> &mut FabricState<FlowBench> {
        &mut self.fabric
    }
}

fn cb() -> FlowCallback<FlowBench> {
    Box::new(|w: &mut FlowBench, _| w.done += 1)
}

/// 64 concurrent flows criss-crossing a 16-GPU two-switch fabric: every
/// start/finish triggers a full max-min recomputation.
fn maxmin_under_load(c: &mut Criterion) {
    c.bench_function("fabric_maxmin_64_flows", |b| {
        b.iter(|| {
            let mut topo = Topology::new();
            let sw0 = topo.add_node("sw0", NodeKind::PcieSwitch);
            let sw1 = topo.add_node("sw1", NodeKind::PcieSwitch);
            topo.add_link(sw0, sw1, LinkSpec::of(LinkClass::PcieGen4x16));
            let spec = GpuSpec::v100_pcie_16gb();
            let gpus: Vec<_> = (0..16)
                .map(|i| {
                    let g = add_gpu(&mut topo, &format!("g{i}"), &spec);
                    let sw = if i < 8 { sw0 } else { sw1 };
                    topo.add_link(g.port, sw, LinkSpec::of(LinkClass::PcieGen4x16));
                    g.core
                })
                .collect();
            let mut w = FlowBench {
                fabric: FabricState::new(topo),
                done: 0,
            };
            let mut sim: Sim<FlowBench> = Sim::new();
            for i in 0..64 {
                let (a, b2) = (gpus[i % 16], gpus[(i * 7 + 3) % 16]);
                if a != b2 {
                    w.fabric
                        .start_flow(&mut sim, a, b2, 0.2 * GB, FlowTag::UNTAGGED, cb());
                }
            }
            sim.run(&mut w);
            black_box(w.done)
        })
    });
}

fn ring_planning(c: &mut Criterion) {
    c.bench_function("collectives_plan_ring_cube_mesh", |b| {
        let mut topo = Topology::new();
        let spec = GpuSpec::v100_sxm2_16gb();
        let gpus: Vec<_> = (0..8)
            .map(|i| add_gpu(&mut topo, &format!("g{i}"), &spec))
            .collect();
        wire_cube_mesh(&mut topo, &gpus);
        let cores: Vec<_> = gpus.iter().map(|g| g.core).collect();
        b.iter(|| {
            let mut t = topo.clone();
            black_box(plan_ring(&mut t, &cores))
        })
    });
}

fn roofline_aggregation(c: &mut Criterion) {
    c.bench_function("roofline_bert_large_step", |b| {
        let model = dlmodels::nlp::bert_large(384);
        let gpu = GpuSpec::v100_sxm2_16gb();
        b.iter(|| {
            let mut total = Dur::ZERO;
            for layer in &model.layers {
                let k = gpu.kernel(
                    layer.flops(6),
                    layer.mem_bytes_fwd(6, dlmodels::Precision::Fp16),
                    Precision::Fp16,
                    layer.kind.compute_efficiency(),
                );
                total += k.total;
            }
            black_box(total)
        })
    });
}

fn routing(c: &mut Criterion) {
    c.bench_function("fabric_route_cold_cache", |b| {
        let composed = composable_core::build_config(composable_core::HostConfig::FalconGpus);
        let gpus: Vec<_> = composed.cluster.gpus.iter().map(|g| g.core).collect();
        b.iter(|| {
            let mut topo = composed.topology.clone();
            let mut hops = 0usize;
            for &a in &gpus {
                for &b2 in &gpus {
                    if a != b2 {
                        hops += topo.route(a, b2).unwrap().hop_count();
                    }
                }
            }
            black_box(hops)
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = event_queue_throughput, scheduler_event_rate, maxmin_under_load,
              ring_planning, roofline_aggregation, routing
}
criterion_main!(kernels);
