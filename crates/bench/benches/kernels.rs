//! Microbenchmarks of the simulator's own hot paths (testkit harness):
//! event queue throughput, max-min rate recomputation under many concurrent
//! flows, routing, ring planning, and roofline aggregation. These bound how
//! large a composable-system study the simulator can sustain.

use collectives::plan_ring;
use desim::queue::EventQueue;
use desim::{Dur, Sim, SimTime};
use devices::catalog::wire_cube_mesh;
use devices::gpu::{add_gpu, GpuSpec};
use devices::Precision;
use fabric::flow::FlowCallback;
use fabric::{FabricState, FlowTag, FlowWorld, LinkClass, LinkSpec, NodeKind, Topology, GB};
use testkit::bench::{black_box, BenchOpts, Suite};

struct FlowBench {
    fabric: FabricState<FlowBench>,
    done: usize,
}

impl FlowWorld for FlowBench {
    fn fabric(&mut self) -> &mut FabricState<FlowBench> {
        &mut self.fabric
    }
}

fn cb() -> FlowCallback<FlowBench> {
    Box::new(|w: &mut FlowBench, _| w.done += 1)
}

fn main() {
    let mut s = Suite::with_opts(
        "kernels",
        BenchOpts {
            warmup_iters: 2,
            iters: 20,
        },
    );

    s.bench("desim_event_queue_100k", || {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut state = 0x12345u64;
        for i in 0..100_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            q.push(SimTime::from_nanos(state % 1_000_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc)
    });

    s.bench("desim_scheduler_50k_events", || {
        struct W {
            count: u64,
        }
        fn tick(w: &mut W, sim: &mut Sim<W>) {
            w.count += 1;
            if w.count < 50_000 {
                sim.schedule_in(Dur::from_nanos(10), tick);
            }
        }
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { count: 0 };
        sim.schedule_in(Dur::from_nanos(1), tick);
        sim.run(&mut w);
        black_box(w.count)
    });

    // 64 concurrent flows criss-crossing a 16-GPU two-switch fabric: every
    // start/finish triggers a full max-min recomputation.
    s.bench("fabric_maxmin_64_flows", || {
        let mut topo = Topology::new();
        let sw0 = topo.add_node("sw0", NodeKind::PcieSwitch);
        let sw1 = topo.add_node("sw1", NodeKind::PcieSwitch);
        topo.add_link(sw0, sw1, LinkSpec::of(LinkClass::PcieGen4x16));
        let spec = GpuSpec::v100_pcie_16gb();
        let gpus: Vec<_> = (0..16)
            .map(|i| {
                let g = add_gpu(&mut topo, &format!("g{i}"), &spec);
                let sw = if i < 8 { sw0 } else { sw1 };
                topo.add_link(g.port, sw, LinkSpec::of(LinkClass::PcieGen4x16));
                g.core
            })
            .collect();
        let mut w = FlowBench {
            fabric: FabricState::new(topo),
            done: 0,
        };
        let mut sim: Sim<FlowBench> = Sim::new();
        for i in 0..64 {
            let (a, b2) = (gpus[i % 16], gpus[(i * 7 + 3) % 16]);
            if a != b2 {
                w.fabric
                    .start_flow(&mut sim, a, b2, 0.2 * GB, FlowTag::UNTAGGED, cb());
            }
        }
        sim.run(&mut w);
        black_box(w.done)
    });

    {
        let mut topo = Topology::new();
        let spec = GpuSpec::v100_sxm2_16gb();
        let gpus: Vec<_> = (0..8)
            .map(|i| add_gpu(&mut topo, &format!("g{i}"), &spec))
            .collect();
        wire_cube_mesh(&mut topo, &gpus);
        let cores: Vec<_> = gpus.iter().map(|g| g.core).collect();
        s.bench("collectives_plan_ring_cube_mesh", || {
            let mut t = topo.clone();
            black_box(plan_ring(&mut t, &cores))
        });
    }

    {
        let model = dlmodels::nlp::bert_large(384);
        let gpu = GpuSpec::v100_sxm2_16gb();
        s.bench("roofline_bert_large_step", || {
            let mut total = Dur::ZERO;
            for layer in &model.layers {
                let k = gpu.kernel(
                    layer.flops(6),
                    layer.mem_bytes_fwd(6, dlmodels::Precision::Fp16),
                    Precision::Fp16,
                    layer.kind.compute_efficiency(),
                );
                total += k.total;
            }
            black_box(total)
        });
    }

    {
        let composed = composable_core::build_config(composable_core::HostConfig::FalconGpus);
        let gpus: Vec<_> = composed.cluster.gpus.iter().map(|g| g.core).collect();
        s.bench("fabric_route_cold_cache", || {
            let mut topo = composed.topology.clone();
            let mut hops = 0usize;
            for &a in &gpus {
                for &b2 in &gpus {
                    if a != b2 {
                        hops += topo.route(a, b2).unwrap().hop_count();
                    }
                }
            }
            black_box(hops)
        });
    }
}
