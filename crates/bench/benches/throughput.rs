//! Throughput benches for the parallel sweep engine (testkit harness):
//!
//! * raw desim event-loop throughput (events/sec) — the denominator every
//!   probe and replay pays per event, and the quantity the fabric scratch-
//!   buffer fast path (DESIGN §9) is meant to protect;
//! * cluster policy-portfolio replay wall-clock at `--jobs 1` vs
//!   `--jobs 4`, asserting byte-identical reports and (on a ≥ 4-core
//!   host) a loose ≥ 2× speedup;
//! * a grid sweep slice at 1 vs 4 workers (the repro table-generation
//!   path).
//!
//! Results are also written to `BENCH_parsweep.json` at the workspace
//! root — the checked-in perf baseline the README "Performance" table is
//! drawn from.

use composable_core::{sweep_jobs, ExperimentOpts, HostConfig};
use desim::json::Value;
use desim::{Dur, Sim};
use dlmodels::Benchmark;
use scheduler::{
    all_policies, compare_policies_cached, trace, ProbeCache, ScheduleReport, SchedulerConfig,
};
use testkit::bench::{black_box, BenchOpts, Suite};

const DESIM_EVENTS: u64 = 100_000;

/// One self-rescheduling event: pops, decrements, re-arms — the leanest
/// possible trip around the event loop.
fn tick(remaining: &mut u64, sim: &mut Sim<u64>) {
    if *remaining > 0 {
        *remaining -= 1;
        sim.schedule_in(Dur::from_nanos(1), tick);
    }
}

fn desim_event_chain() -> u64 {
    let mut sim: Sim<u64> = Sim::new();
    let mut remaining = DESIM_EVENTS;
    sim.schedule_in(Dur::from_nanos(1), tick);
    sim.run(&mut remaining);
    assert_eq!(remaining, 0);
    sim.events_executed()
}

fn replay_portfolio(jobs: usize) -> Vec<ScheduleReport> {
    // A fresh cache each call: the bench measures probing + replay, not
    // cache hits.
    let mut cache = ProbeCache::new(SchedulerConfig::default().probe_iters);
    compare_policies_cached(
        &trace::seeded_two_tenant(20, 0xC10D),
        all_policies(),
        &SchedulerConfig::default(),
        jobs,
        &mut cache,
    )
    .expect("trace drains under every policy")
}

fn grid_cells() -> Vec<(Benchmark, HostConfig)> {
    [Benchmark::MobileNetV2, Benchmark::ResNet50]
        .into_iter()
        .flat_map(|b| HostConfig::gpu_configs().into_iter().map(move |c| (b, c)))
        .collect()
}

fn grid_slice(jobs: usize) -> usize {
    let reports = sweep_jobs(&grid_cells(), &ExperimentOpts::scaled(2), jobs);
    reports.iter().filter(|r| r.is_ok()).count()
}

/// The worker count a leg *actually* runs with: parsweep clamps the
/// requested count to the number of jobs in the fan-out, so a "jobs4" leg
/// over a 4-policy portfolio runs 4 workers, but over 2 cells only 2.
fn actual_workers(requested: usize, fanout: usize) -> usize {
    requested.max(1).min(fanout.max(1))
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = Suite::with_opts(
        "throughput",
        BenchOpts {
            warmup_iters: 1,
            iters: 5,
        },
    );

    let desim_stats = s
        .bench("desim_event_loop_100k_events", || {
            black_box(desim_event_chain())
        })
        .clone();
    let events_per_sec = DESIM_EVENTS as f64 / (desim_stats.median_ns as f64 / 1e9);
    println!("  -> {events_per_sec:.0} events/sec (median)");

    // Byte-identity across worker counts is asserted once up front so a
    // regression fails loudly before any timing is reported.
    let serial: Vec<String> = replay_portfolio(1).iter().map(|r| r.to_json_string()).collect();
    let parallel: Vec<String> = replay_portfolio(4).iter().map(|r| r.to_json_string()).collect();
    assert_eq!(serial, parallel, "jobs=4 replay output must be byte-identical to jobs=1");

    let replay1 = s
        .bench("cluster_replay_20_jobs_portfolio_jobs1", || {
            black_box(replay_portfolio(1).len())
        })
        .clone();
    let replay4 = s
        .bench("cluster_replay_20_jobs_portfolio_jobs4", || {
            black_box(replay_portfolio(4).len())
        })
        .clone();
    let replay_speedup = replay1.median_ns as f64 / replay4.median_ns as f64;
    println!("  -> replay speedup jobs4/jobs1: {replay_speedup:.2}x on {cores} core(s)");
    if replay_speedup < 1.0 {
        // Non-fatal: on few-core hosts the split/absorb overhead of the
        // per-policy cache can outweigh the parallelism. Tracked here and
        // in BENCH_scenario.json so the trajectory stays visible.
        println!(
            "  -> WARNING: parallel replay slower than serial ({replay_speedup:.2}x < 1.00x); \
             intra-replay parallelism is regressing, see cluster_replay_speedup in BENCH_parsweep.json"
        );
    }

    let grid1 = s
        .bench("grid_slice_6_cells_jobs1", || black_box(grid_slice(1)))
        .clone();
    let grid4 = s
        .bench("grid_slice_6_cells_jobs4", || black_box(grid_slice(4)))
        .clone();
    let grid_speedup = grid1.median_ns as f64 / grid4.median_ns as f64;
    println!("  -> grid speedup jobs4/jobs1: {grid_speedup:.2}x on {cores} core(s)");

    if cores >= 4 {
        // Loose bound: 4 workers over ≥ 4 independent replays should
        // roughly halve wall-clock even with probe-warm serial sections.
        assert!(
            replay_speedup >= 1.8,
            "expected >= 1.8x replay speedup with 4 workers on {cores} cores, got {replay_speedup:.2}x"
        );
    } else {
        println!("  -> speedup assertion skipped: only {cores} core(s) available");
    }

    // Speedup ratios are only meaningful when the host can actually run
    // two workers at once; testkit's shared helper records null (and the
    // note says why) on a 1-core host.
    let speedup_field = |ratio: f64| testkit::bench::speedup_or_null(cores, ratio);
    let note = if cores >= 2 {
        "speedups are wall-clock only; output is byte-identical at any worker count \
         (asserted above and in tests/parallel_determinism.rs)"
            .to_string()
    } else {
        format!(
            "{}; output is still byte-identical at any worker count (asserted above \
             and in tests/parallel_determinism.rs)",
            testkit::bench::suppressed_speedup_note("speedups")
        )
    };
    let n_policies = all_policies().len();
    let baseline = Value::obj(vec![
        ("suite", Value::str("parsweep-throughput")),
        ("host_parallelism", Value::from_u64(cores as u64)),
        ("desim_events_per_sec", Value::Num(events_per_sec.round())),
        ("desim_100k_events_median_ns", Value::from_u64(desim_stats.median_ns as u64)),
        ("cluster_replay_jobs1_median_ns", Value::from_u64(replay1.median_ns as u64)),
        ("cluster_replay_jobs1_workers", Value::from_u64(actual_workers(1, n_policies) as u64)),
        ("cluster_replay_jobs4_median_ns", Value::from_u64(replay4.median_ns as u64)),
        ("cluster_replay_jobs4_workers", Value::from_u64(actual_workers(4, n_policies) as u64)),
        ("cluster_replay_speedup", speedup_field(replay_speedup)),
        ("grid_slice_jobs1_median_ns", Value::from_u64(grid1.median_ns as u64)),
        ("grid_slice_jobs1_workers", Value::from_u64(actual_workers(1, grid_cells().len()) as u64)),
        ("grid_slice_jobs4_median_ns", Value::from_u64(grid4.median_ns as u64)),
        ("grid_slice_jobs4_workers", Value::from_u64(actual_workers(4, grid_cells().len()) as u64)),
        ("grid_slice_speedup", speedup_field(grid_speedup)),
        ("note", Value::str(note)),
    ])
    .emit_pretty();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parsweep.json");
    std::fs::write(path, baseline + "\n").expect("write BENCH_parsweep.json");
    println!("baseline written to BENCH_parsweep.json");
}
