//! Integration tests asserting the paper's headline findings on the
//! simulated composable system. Each test names the claim it pins
//! (section / figure in the paper).
//!
//! Runs are scaled (capped iterations) — steady-state per-iteration
//! behavior, and hence every *relative* claim, is unchanged.

use composable_core::{runner::ExperimentOpts, HostConfig};
use dlmodels::{Benchmark, Precision};
use training::Strategy;

fn iter_secs(b: Benchmark, c: HostConfig, opts: &ExperimentOpts) -> f64 {
    composable_core::run(b, c, opts)
        .unwrap()
        .mean_iter
        .as_secs_f64()
}

/// §V-C.2 / Fig 11: "for smaller models, such as MobileNetv2 and
/// ResNet-50, the overhead of the PCI-e switching is negligible — less
/// than 5 % slower than the local GPUs configuration" (we allow a small
/// margin above ResNet's published bound; see EXPERIMENTS.md).
#[test]
fn small_vision_models_see_negligible_falcon_overhead() {
    let opts = ExperimentOpts::scaled(15).without_checkpoints();
    for b in [Benchmark::MobileNetV2, Benchmark::ResNet50] {
        let local = iter_secs(b, HostConfig::LocalGpus, &opts);
        let falcon = iter_secs(b, HostConfig::FalconGpus, &opts);
        let pct = (falcon / local - 1.0) * 100.0;
        assert!(pct < 7.0, "{b:?} falcon overhead {pct:.1}% too large");
        assert!(pct > -1.0, "{b:?} falcon cannot be faster: {pct:.1}%");
    }
}

/// §V-C.2 / Fig 11: "overall for the vision workloads, the training is
/// less than 7 % slower when using a GPU configuration that involves the
/// Falcon" (we allow a small margin; YOLO lands at ~7.5 %).
#[test]
fn vision_workloads_stay_under_about_seven_percent() {
    let opts = ExperimentOpts::scaled(15).without_checkpoints();
    for b in [
        Benchmark::MobileNetV2,
        Benchmark::ResNet50,
        Benchmark::YoloV5L,
    ] {
        for c in [HostConfig::HybridGpus, HostConfig::FalconGpus] {
            let local = iter_secs(b, HostConfig::LocalGpus, &opts);
            let with_falcon = iter_secs(b, c, &opts);
            let pct = (with_falcon / local - 1.0) * 100.0;
            assert!(pct < 8.5, "{b:?} on {c}: {pct:.1}%");
        }
    }
}

/// §V-C.2 / Fig 11: "BERT-large fine-tuning time took almost twice as
/// much time using Falcon-attached GPUs."
#[test]
fn bert_large_doubles_on_falcon_gpus() {
    let opts = ExperimentOpts::scaled(15).without_checkpoints();
    let local = iter_secs(Benchmark::BertLarge, HostConfig::LocalGpus, &opts);
    let falcon = iter_secs(Benchmark::BertLarge, HostConfig::FalconGpus, &opts);
    let ratio = falcon / local;
    assert!(
        (1.7..=2.3).contains(&ratio),
        "BERT-L falcon/local ratio {ratio:.2} should be ~2x"
    );
    // Hybrid sits between the extremes.
    let hybrid = iter_secs(Benchmark::BertLarge, HostConfig::HybridGpus, &opts);
    assert!(hybrid > local * 1.1 && hybrid < falcon);
}

/// §V-C.2: "we can see the correlation between the overhead and the size
/// of the model" — falcon overhead increases monotonically with parameter
/// count within each domain.
#[test]
fn falcon_overhead_correlates_with_model_size() {
    let opts = ExperimentOpts::scaled(15).without_checkpoints();
    let overhead = |b| {
        iter_secs(b, HostConfig::FalconGpus, &opts) / iter_secs(b, HostConfig::LocalGpus, &opts)
    };
    // Vision, by size: MobileNet (3.4M) < ResNet (25.6M) < YOLO (47M).
    let mobile = overhead(Benchmark::MobileNetV2);
    let yolo = overhead(Benchmark::YoloV5L);
    assert!(mobile < yolo, "mobile {mobile:.3} vs yolo {yolo:.3}");
    // NLP: BERT-base (110M) < BERT-large (340M).
    let base = overhead(Benchmark::BertBase);
    let large = overhead(Benchmark::BertLarge);
    assert!(base < large, "base {base:.3} vs large {large:.3}");
    // NLP models pay far more than vision models.
    assert!(large > yolo + 0.3);
}

/// §V-C.2 / Fig 12: PCIe traffic grows sharply with model size — BERT-L's
/// falcon-GPU traffic is several times ResNet's, which is above
/// MobileNet's (paper: 76.43 vs 11.31 vs 4 GB/s).
#[test]
fn falcon_pcie_traffic_ranks_by_model_size() {
    let opts = ExperimentOpts::scaled(15).without_checkpoints();
    let rate = |b| {
        composable_core::run(b, HostConfig::FalconGpus, &opts)
            .unwrap()
            .falcon_pcie_rate
            / 1e9
    };
    let mobile = rate(Benchmark::MobileNetV2);
    let resnet = rate(Benchmark::ResNet50);
    let bert_l = rate(Benchmark::BertLarge);
    assert!(mobile < resnet && resnet < bert_l);
    assert!(
        (50.0..110.0).contains(&bert_l),
        "BERT-L traffic {bert_l:.1} GB/s vs paper's 76.43"
    );
    assert!(
        (6.0..16.0).contains(&resnet),
        "ResNet traffic {resnet:.1} GB/s vs paper's 11.31"
    );
    let ratio = bert_l / resnet;
    assert!(
        (5.0..10.0).contains(&ratio),
        "paper: BERT-L ≈ 7x ResNet; got {ratio:.1}"
    );
}

/// §V-C.2 / Fig 13: "vision benchmarks exercise the host CPUs more than
/// NLP benchmarks" (preprocessing), and nobody stresses the CPU.
#[test]
fn vision_uses_more_cpu_than_nlp_but_nobody_is_cpu_bound() {
    let opts = ExperimentOpts::scaled(15).without_checkpoints();
    let cpu = |b| {
        composable_core::run(b, HostConfig::LocalGpus, &opts)
            .unwrap()
            .cpu_util
    };
    let vision_max = [Benchmark::MobileNetV2, Benchmark::ResNet50, Benchmark::YoloV5L]
        .map(cpu)
        .into_iter()
        .fold(0.0, f64::max);
    let nlp_max = [Benchmark::BertBase, Benchmark::BertLarge]
        .map(cpu)
        .into_iter()
        .fold(0.0, f64::max);
    assert!(vision_max > 4.0 * nlp_max.max(0.01));
    assert!(vision_max < 0.85, "CPUs are not stressed: {vision_max}");
}

/// §V-C.2 / Fig 14: system memory is not stressed by any benchmark.
#[test]
fn host_memory_is_not_stressed() {
    let opts = ExperimentOpts::scaled(15).without_checkpoints();
    for b in Benchmark::all() {
        let r = composable_core::run(b, HostConfig::LocalGpus, &opts).unwrap();
        assert!(
            r.host_mem_util < 0.5,
            "{b:?} host mem util {:.2}",
            r.host_mem_util
        );
    }
}

/// §V-C.2 / Fig 10: GPU utilization is slightly *higher* on Falcon
/// configurations (NCCL kernels occupy the SMs during exposed
/// communication) while the share of time bound by GPU memory is lower.
#[test]
fn falcon_configs_show_higher_util_and_lower_mem_share() {
    let opts = ExperimentOpts::scaled(15).without_checkpoints();
    let local = composable_core::run(Benchmark::BertLarge, HostConfig::LocalGpus, &opts).unwrap();
    let falcon =
        composable_core::run(Benchmark::BertLarge, HostConfig::FalconGpus, &opts).unwrap();
    assert!(falcon.gpu_util >= local.gpu_util);
    assert!(falcon.gpu_mem_access_share < local.gpu_mem_access_share);
}

/// §V-C.3 / Fig 15: NVMe helps the storage-heavy benchmarks, and the
/// falcon-attached NVMe behaves nearly like the local one ("the overhead
/// of PCI-e switching through the falcon is small in this case").
#[test]
fn nvme_accelerates_and_falcon_nvme_is_close_to_local() {
    // Keep checkpoints + cold first epoch: that's what the storage
    // configurations differ on.
    let opts = ExperimentOpts {
        iters_per_epoch: Some(30),
        epochs: Some(3),
        ..ExperimentOpts::default()
    };
    for b in [Benchmark::YoloV5L, Benchmark::BertLarge] {
        let base = composable_core::run(b, HostConfig::LocalGpus, &opts).unwrap();
        let local_nvme = composable_core::run(b, HostConfig::LocalNvme, &opts).unwrap();
        let falcon_nvme = composable_core::run(b, HostConfig::FalconNvme, &opts).unwrap();
        assert!(
            local_nvme.total_time < base.total_time,
            "{b:?}: NVMe should beat SATA scratch"
        );
        let falcon_penalty = falcon_nvme.total_time.as_secs_f64()
            / local_nvme.total_time.as_secs_f64();
        assert!(
            (0.99..1.10).contains(&falcon_penalty),
            "{b:?}: falcon NVMe within a few % of local NVMe, got {falcon_penalty:.3}"
        );
    }
}

/// §V-C.4 / Fig 16: mixed precision gives > 50 % speedup everywhere and
/// > 70 % on Falcon-attached GPUs.
#[test]
fn mixed_precision_speedups_match_fig16() {
    let base = ExperimentOpts::scaled(10).without_checkpoints().with_auto_batch();
    for (config, min_reduction) in [
        (HostConfig::LocalGpus, 0.5),
        (HostConfig::FalconGpus, 0.7),
    ] {
        let fp32 = composable_core::run(
            Benchmark::BertLarge,
            config,
            &base.clone().with_precision(Precision::Fp32),
        )
        .unwrap();
        let fp16 = composable_core::run(
            Benchmark::BertLarge,
            config,
            &base.clone().with_precision(Precision::Fp16),
        )
        .unwrap();
        // Throughput-normalized time reduction (batches differ).
        let reduction = 1.0 - fp32.throughput / fp16.throughput;
        let reduction = -reduction; // time reduction = 1 - t16/t32 = 1 - thr32/thr16
        let time_reduction = 1.0 - fp32.throughput / fp16.throughput;
        let _ = reduction;
        assert!(
            time_reduction > min_reduction,
            "{config}: fp16 time reduction {time_reduction:.2} < {min_reduction}"
        );
    }
}

/// §V-C.4 / Fig 16: DDP is much faster than single-process DP,
/// "especially in the case of locally-attached GPUs (more than 80 %)".
#[test]
fn ddp_beats_dp_by_more_than_eighty_percent() {
    let opts = ExperimentOpts::scaled(10).without_checkpoints().with_auto_batch();
    let dp = composable_core::run(
        Benchmark::BertLarge,
        HostConfig::LocalGpus,
        &opts.clone().with_strategy(Strategy::Dp),
    )
    .unwrap();
    let ddp = composable_core::run(
        Benchmark::BertLarge,
        HostConfig::LocalGpus,
        &opts.clone().with_strategy(Strategy::ddp()),
    )
    .unwrap();
    let speedup_pct = (ddp.throughput / dp.throughput - 1.0) * 100.0;
    assert!(speedup_pct > 80.0, "DDP over DP: {speedup_pct:.0}%");
}

/// §V-C.4 / Fig 16: sharded training lifts the feasible BERT-large batch
/// from 6 to 10 and yields additional speedup.
#[test]
fn sharding_increases_batch_and_speed() {
    let base = ExperimentOpts::scaled(10).without_checkpoints();
    // Batch 10 OOMs under plain DDP but fits sharded.
    assert!(composable_core::run(
        Benchmark::BertLarge,
        HostConfig::LocalGpus,
        &base.clone().with_batch(10)
    )
    .is_err());
    let ddp6 = composable_core::run(Benchmark::BertLarge, HostConfig::LocalGpus, &base).unwrap();
    let sharded10 = composable_core::run(
        Benchmark::BertLarge,
        HostConfig::LocalGpus,
        &base.clone().with_strategy(Strategy::sharded()).with_batch(10),
    )
    .unwrap();
    assert!(
        sharded10.throughput > ddp6.throughput,
        "sharded b10 {:.0}/s vs DDP b6 {:.0}/s",
        sharded10.throughput,
        ddp6.throughput
    );
}

/// Fig 9's texture: periodic utilization dips at epoch boundaries
/// (checkpointing) appear in the utilization trace.
#[test]
fn utilization_trace_shows_checkpoint_dips() {
    let opts = ExperimentOpts {
        iters_per_epoch: Some(200),
        epochs: Some(3),
        ..ExperimentOpts::default()
    };
    let r = composable_core::run(Benchmark::BertLarge, HostConfig::LocalGpus, &opts).unwrap();
    let min = r.gpu_util_trace.iter().copied().fold(f64::INFINITY, f64::min);
    let max = r.gpu_util_trace.iter().copied().fold(0.0, f64::max);
    assert!(max > 0.9, "busy phases near 100%: {max}");
    assert!(
        min < 0.7,
        "epoch-boundary checkpoint dips visible in the trace: min {min}"
    );
}
