//! Property tests driving full training runs through the public runner.
//!
//! Invariants covered (testkit, 64 cases each — raised from 12 under
//! proptest; runs are scaled down so the suite stays fast):
//! * every (benchmark, config, batch, seed) cell yields a physically
//!   coherent report (fractions in range, throughput consistent with
//!   iteration accounting, falcon traffic iff falcon GPUs);
//! * equal seeds replay identically, different seeds stay in a jitter band.

use composable_core::runner::{run, ExperimentOpts};
use composable_core::HostConfig;
use dlmodels::Benchmark;
use testkit::{prop_assert, prop_assert_eq, property, select, tuple4, u64_in, usize_in};

property! {
    /// Any (benchmark, config, small batch) cell that fits produces a
    /// physically coherent report.
    #[cases(64)]
    fn reports_are_coherent(input in tuple4(
        select(Benchmark::all().to_vec()),
        usize_in(0..3),
        u64_in(2..6),
        u64_in(0..1000),
    )) {
        let (b, cfg_idx, iters, seed) = input;
        let config = HostConfig::gpu_configs()[cfg_idx];
        let mut opts = ExperimentOpts::scaled(iters).without_checkpoints();
        opts.seed = seed;
        let r = run(b, config, &opts).unwrap();
        prop_assert_eq!(r.iterations, 2 * iters);
        prop_assert!(r.total_time.as_secs_f64() > 0.0);
        prop_assert!(r.mean_iter.as_secs_f64() > 0.0);
        // Utilizations are fractions.
        for v in [r.gpu_util, r.cpu_util, r.host_mem_util, r.gpu_mem_util,
                  r.gpu_mem_access_share, r.input_stall_share, r.exposed_comm_share] {
            prop_assert!((0.0..=1.0).contains(&v), "fraction out of range: {}", v);
        }
        // Throughput is exactly consistent with iteration accounting:
        // throughput x wall-clock = iterations x n_gpus x per-GPU batch.
        let (batch, _) = training::config::paper_batch(b, 8);
        let implied = r.throughput * r.total_time.as_secs_f64();
        let expected = (r.iterations * 8 * batch) as f64;
        prop_assert!(
            (implied - expected).abs() / expected < 1e-6,
            "samples accounted: {} vs {}", implied, expected
        );
        // Falcon traffic appears exactly when falcon GPUs exist.
        if config.has_falcon_gpus() {
            prop_assert!(r.falcon_pcie_rate > 0.0);
        } else {
            prop_assert!(r.falcon_pcie_rate == 0.0);
        }
    }

    /// The same seed replays identically; different seeds may differ
    /// (jitter) but stay within a tight band.
    #[cases(64)]
    fn seeds_jitter_within_band(seed_a in u64_in(0..500), seed_b in u64_in(500..1000)) {
        let mk = |seed| {
            let mut o = ExperimentOpts::scaled(4).without_checkpoints();
            o.seed = seed;
            run(Benchmark::ResNet50, HostConfig::LocalGpus, &o).unwrap()
        };
        let a1 = mk(seed_a);
        let a2 = mk(seed_a);
        prop_assert_eq!(a1.total_time, a2.total_time);
        let b = mk(seed_b);
        let ratio = b.total_time.as_secs_f64() / a1.total_time.as_secs_f64();
        prop_assert!((0.9..1.1).contains(&ratio), "jitter band: {}", ratio);
    }
}
