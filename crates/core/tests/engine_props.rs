//! Property tests driving full training runs through the public runner.

use composable_core::runner::{run, ExperimentOpts};
use composable_core::HostConfig;
use dlmodels::Benchmark;
use proptest::prelude::*;

proptest! {
    // Full simulations are comparatively expensive; keep cases low but
    // the space covered wide.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (benchmark, config, small batch) cell that fits produces a
    /// physically coherent report.
    #[test]
    fn reports_are_coherent(
        b in proptest::sample::select(Benchmark::all().to_vec()),
        cfg_idx in 0usize..3,
        iters in 2u64..6,
        seed in 0u64..1000,
    ) {
        let config = HostConfig::gpu_configs()[cfg_idx];
        let mut opts = ExperimentOpts::scaled(iters).without_checkpoints();
        opts.seed = seed;
        let r = run(b, config, &opts).unwrap();
        prop_assert_eq!(r.iterations, 2 * iters);
        prop_assert!(r.total_time.as_secs_f64() > 0.0);
        prop_assert!(r.mean_iter.as_secs_f64() > 0.0);
        // Utilizations are fractions.
        for v in [r.gpu_util, r.cpu_util, r.host_mem_util, r.gpu_mem_util,
                  r.gpu_mem_access_share, r.input_stall_share, r.exposed_comm_share] {
            prop_assert!((0.0..=1.0).contains(&v), "fraction out of range: {}", v);
        }
        // Throughput is exactly consistent with iteration accounting:
        // throughput x wall-clock = iterations x n_gpus x per-GPU batch.
        let (batch, _) = training::config::paper_batch(b, 8);
        let implied = r.throughput * r.total_time.as_secs_f64();
        let expected = (r.iterations * 8 * batch) as f64;
        prop_assert!(
            (implied - expected).abs() / expected < 1e-6,
            "samples accounted: {} vs {}", implied, expected
        );
        // Falcon traffic appears exactly when falcon GPUs exist.
        if config.has_falcon_gpus() {
            prop_assert!(r.falcon_pcie_rate > 0.0);
        } else {
            prop_assert!(r.falcon_pcie_rate == 0.0);
        }
    }

    /// The same seed replays identically; different seeds may differ
    /// (jitter) but stay within a tight band.
    #[test]
    fn seeds_jitter_within_band(seed_a in 0u64..500, seed_b in 500u64..1000) {
        let mk = |seed| {
            let mut o = ExperimentOpts::scaled(4).without_checkpoints();
            o.seed = seed;
            run(Benchmark::ResNet50, HostConfig::LocalGpus, &o).unwrap()
        };
        let a1 = mk(seed_a);
        let a2 = mk(seed_a);
        prop_assert_eq!(a1.total_time, a2.total_time);
        let b = mk(seed_b);
        let ratio = b.total_time.as_secs_f64() / a1.total_time.as_secs_f64();
        prop_assert!((0.9..1.1).contains(&ratio), "jitter band: {}", ratio);
    }
}
