//! Topology recommendation — the paper's stated future work (§VI):
//! *"build a system framework that can take the input of various
//! configured runs, and recommend the optimal system level topology for AI
//! and HPC workloads."*
//!
//! The recommender simulates a workload on every candidate composition
//! (optionally scaled down for speed), scores each run against an
//! [`Objective`], and returns a ranked list with the measured evidence
//! attached.

use crate::config::HostConfig;
use crate::runner::ExperimentOpts;
use dlmodels::Benchmark;
use training::RunReport;

/// What "optimal" means for the requesting tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize wall-clock training time.
    TrainingTime,
    /// Maximize training throughput per GPU (resource efficiency —
    /// prefer compositions that don't waste pooled GPUs).
    ThroughputPerGpu,
    /// Minimize the share of time lost to exposed communication and
    /// input stalls (bottleneck-freeness).
    Balance,
}

impl Objective {
    /// Score a run; **higher is better**. Public so other rankers (the
    /// cluster scheduler's topology-aware placement policy) can score
    /// candidate compositions with the same objective definitions.
    pub fn score(self, r: &RunReport, n_gpus: usize) -> f64 {
        match self {
            Objective::TrainingTime => -r.total_time.as_secs_f64(),
            Objective::ThroughputPerGpu => r.throughput / n_gpus.max(1) as f64,
            Objective::Balance => -(r.exposed_comm_share + r.input_stall_share),
        }
    }
}

/// One ranked candidate.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub config: HostConfig,
    pub score: f64,
    pub report: RunReport,
}

/// Simulate `benchmark` on every candidate configuration and rank by
/// `objective`. Candidates that do not fit (OOM) are dropped — that *is*
/// the recommendation signal for them. Candidates are evaluated on
/// [`parsweep::default_jobs`] workers; the ranking is byte-identical to a
/// serial evaluation (candidate runs are independent, scores are computed
/// and stably sorted in candidate order).
pub fn recommend(
    benchmark: Benchmark,
    candidates: &[HostConfig],
    objective: Objective,
    opts: &ExperimentOpts,
) -> Vec<Recommendation> {
    recommend_jobs(benchmark, candidates, objective, opts, parsweep::default_jobs())
}

/// [`recommend`] with an explicit parsweep worker count.
pub fn recommend_jobs(
    benchmark: Benchmark,
    candidates: &[HostConfig],
    objective: Objective,
    opts: &ExperimentOpts,
    jobs: usize,
) -> Vec<Recommendation> {
    let cells: Vec<(Benchmark, HostConfig)> =
        candidates.iter().map(|&c| (benchmark, c)).collect();
    let mut ranked: Vec<Recommendation> = crate::runner::sweep_jobs(&cells, opts, jobs)
        .into_iter()
        .zip(candidates)
        .filter_map(|(result, &config)| {
            let report = result.ok()?;
            let n = 8; // all Table III configs compose 8 GPUs
            Some(Recommendation {
                config,
                score: objective.score(&report, n),
                report,
            })
        })
        .collect();
    ranked.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommends_local_gpus_for_bert_large_time() {
        let recs = recommend(
            Benchmark::BertLarge,
            &HostConfig::gpu_configs(),
            Objective::TrainingTime,
            &ExperimentOpts::scaled(4),
        );
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs[0].config,
            HostConfig::LocalGpus,
            "NVLink wins for communication-bound BERT-L"
        );
        // Scores are sorted descending.
        assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn small_models_rank_configs_close_together() {
        let recs = recommend(
            Benchmark::MobileNetV2,
            &HostConfig::gpu_configs(),
            Objective::TrainingTime,
            &ExperimentOpts::scaled(4),
        );
        let spread = (recs[0].report.total_time.as_secs_f64()
            - recs.last().unwrap().report.total_time.as_secs_f64())
        .abs()
            / recs[0].report.total_time.as_secs_f64();
        assert!(
            spread < 0.15,
            "for small models the composition barely matters: {spread}"
        );
    }

    #[test]
    fn balance_objective_penalizes_exposed_comm() {
        let recs = recommend(
            Benchmark::BertLarge,
            &[HostConfig::LocalGpus, HostConfig::FalconGpus],
            Objective::Balance,
            &ExperimentOpts::scaled(4),
        );
        assert_eq!(recs[0].config, HostConfig::LocalGpus);
    }
}
