//! Building Table III configurations into concrete fabric topologies.
//!
//! The composed system follows the paper's Fig 6: one Supermicro
//! SYS-4029GP-TVRT host (2× Xeon Gold 6148, 756 GB DRAM, 8 Tesla V100
//! SXM2 in the NVLink hybrid cube mesh) cabled into a Falcon 4016 whose
//! drawers each carry four Tesla V100 PCIe GPUs; drawer 1 also carries a
//! 4 TB NVMe drive. A second 4 TB NVMe is attached locally, and a
//! SATA-class scratch disk is the "local storage" baseline.

use crate::config::HostConfig;
use devices::catalog::wire_cube_mesh;
use devices::gpu::{add_gpu, GpuSpec};
use devices::storage::{add_storage, StorageSpec};
use devices::{CpuSpec, DramSpec};
use fabric::{LinkClass, LinkSpec, NodeId, NodeKind, Topology};
use falcon::{DrawerId, Falcon4016, HostId, HostPort, Mode, SlotAddr, SlotDevice};
use std::collections::BTreeMap;
use training::{Cluster, GpuHandle};

/// The materialized test bed for one configuration.
pub struct Composed {
    pub topology: Topology,
    pub cluster: Cluster,
    /// The chassis model (management-plane operations remain available).
    pub chassis: Falcon4016,
}

/// Host-side constants of the paper's test bed.
pub struct HostSpec {
    pub cpu: CpuSpec,
    pub dram: DramSpec,
}

impl Default for HostSpec {
    fn default() -> Self {
        HostSpec {
            cpu: CpuSpec::dual_xeon_6148(),
            dram: DramSpec::host_756gb(),
        }
    }
}

/// Build a Table III configuration into a topology + cluster.
pub fn build_config(config: HostConfig) -> Composed {
    let host = HostSpec::default();
    let mut topo = Topology::new();

    // Host root complex and DRAM.
    let rc = topo.add_node("host0.rc", NodeKind::RootComplex);
    let mem = topo.add_node("host0.dram", NodeKind::Memory);
    topo.add_link(rc, mem, LinkSpec::of(LinkClass::MemoryBus));

    // Eight local SXM2 V100s: PCIe to the root complex, NVLink cube mesh.
    let sxm2 = GpuSpec::v100_sxm2_16gb();
    let local_gpus: Vec<_> = (0..8)
        .map(|i| {
            let g = add_gpu(&mut topo, &format!("host0.gpu{i}"), &sxm2);
            topo.add_link(g.port, rc, LinkSpec::of(LinkClass::PcieGen3x16));
            g
        })
        .collect();
    wire_cube_mesh(&mut topo, &local_gpus);

    // Storage tiers on the host.
    let sata_spec = StorageSpec::sata_ssd();
    let sata = add_storage(&mut topo, "host0.scratch", &sata_spec);
    topo.add_link(sata.port, rc, LinkSpec::of(LinkClass::Sata3));
    let nvme_spec = StorageSpec::intel_p4500_4tb();
    let local_nvme = add_storage(&mut topo, "host0.nvme", &nvme_spec);
    topo.add_link(local_nvme.port, rc, LinkSpec::of(LinkClass::PcieGen3x4));

    // The Falcon 4016 per Fig 6: four V100 PCIe GPUs in each drawer and an
    // NVMe drive in drawer 1; host ports H1/H2 cable the host into both
    // drawers.
    let mut chassis = Falcon4016::new("falcon0", Mode::Standard);
    let host_id = HostId(0);
    chassis
        .connect_host(HostPort::H1, host_id, DrawerId(0))
        .expect("cable drawer 0");
    chassis
        .connect_host(HostPort::H2, host_id, DrawerId(1))
        .expect("cable drawer 1");
    let pcie_v100 = GpuSpec::v100_pcie_16gb();
    for d in 0..2u8 {
        for s in 0..4u8 {
            chassis
                .insert_device(SlotAddr::new(d, s), SlotDevice::Gpu(pcie_v100.clone()))
                .expect("insert falcon GPU");
        }
    }
    chassis
        .insert_device(SlotAddr::new(1, 4), SlotDevice::Nvme(nvme_spec.clone()))
        .expect("insert falcon NVMe");

    // Attach what this configuration uses.
    let falcon_gpu_slots: Vec<SlotAddr> = match config {
        HostConfig::HybridGpus => (0..4).map(|s| SlotAddr::new(0, s)).collect(),
        HostConfig::FalconGpus => (0..2)
            .flat_map(|d| (0..4).map(move |s| SlotAddr::new(d, s)))
            .collect(),
        _ => Vec::new(),
    };
    for &slot in &falcon_gpu_slots {
        chassis.attach(slot, host_id).expect("attach falcon GPU");
    }
    if config == HostConfig::FalconNvme {
        chassis
            .attach(SlotAddr::new(1, 4), host_id)
            .expect("attach falcon NVMe");
    }

    let mut host_nodes = BTreeMap::new();
    host_nodes.insert(host_id, rc);
    chassis
        .materialize(&mut topo, &host_nodes)
        .expect("materialize chassis");

    // Assemble the cluster view.
    let mut gpus: Vec<GpuHandle> = Vec::new();
    let n_local = match config {
        HostConfig::HybridGpus => 4,
        HostConfig::FalconGpus => 0,
        _ => 8,
    };
    for g in local_gpus.iter().take(n_local) {
        gpus.push(GpuHandle {
            core: g.core,
            port: g.port,
            spec: sxm2.clone(),
            falcon_attached: false,
        });
    }
    for &slot in &falcon_gpu_slots {
        let nodes = chassis.slot_nodes(slot).expect("materialized slot");
        gpus.push(GpuHandle {
            core: nodes.endpoint,
            port: nodes.port,
            spec: pcie_v100.clone(),
            falcon_attached: true,
        });
    }

    let (storage_dev, storage_spec, storage_falcon): (NodeId, StorageSpec, bool) = match config {
        HostConfig::LocalNvme => (local_nvme.device, nvme_spec, false),
        HostConfig::FalconNvme => {
            let nodes = chassis
                .slot_nodes(SlotAddr::new(1, 4))
                .expect("falcon NVMe materialized");
            (nodes.endpoint, nvme_spec, true)
        }
        _ => (sata.device, sata_spec, false),
    };

    let cluster = Cluster {
        host_rc: rc,
        host_mem: mem,
        gpus,
        storage_dev,
        storage: storage_spec,
        storage_falcon_attached: storage_falcon,
        cpu: host.cpu,
        dram: host.dram,
        label: config.label().to_string(),
    };

    Composed {
        topology: topo,
        cluster,
        chassis,
    }
}

/// Extension (paper §VI future work: "incorporating other accelerators"):
/// compose a host whose Falcon pool carries `n_gpus` devices of an
/// arbitrary GPU model (e.g. the P100s the chassis also holds), split
/// across the two drawers like the paper's V100 layout. Storage is the
/// local NVMe.
pub fn build_custom_falcon_host(gpu: &GpuSpec, n_gpus: usize) -> Composed {
    assert!((1..=8).contains(&n_gpus), "one chassis: up to 8 pooled GPUs");
    let host = HostSpec::default();
    let mut topo = Topology::new();
    let rc = topo.add_node("host0.rc", NodeKind::RootComplex);
    let mem = topo.add_node("host0.dram", NodeKind::Memory);
    topo.add_link(rc, mem, LinkSpec::of(LinkClass::MemoryBus));
    let nvme_spec = StorageSpec::intel_p4500_4tb();
    let nvme = add_storage(&mut topo, "host0.nvme", &nvme_spec);
    topo.add_link(nvme.port, rc, LinkSpec::of(LinkClass::PcieGen3x4));

    let mut chassis = Falcon4016::new("falcon0", Mode::Standard);
    let host_id = HostId(0);
    chassis
        .connect_host(HostPort::H1, host_id, DrawerId(0))
        .expect("cable drawer 0");
    chassis
        .connect_host(HostPort::H2, host_id, DrawerId(1))
        .expect("cable drawer 1");
    let mut slots = Vec::new();
    for i in 0..n_gpus {
        // Fill drawer 0's four slots first, then drawer 1 (Fig 6 layout).
        let addr = SlotAddr::new((i / 4) as u8, (i % 4) as u8);
        chassis
            .insert_device(addr, SlotDevice::Gpu(gpu.clone()))
            .expect("insert GPU");
        chassis.attach(addr, host_id).expect("attach GPU");
        slots.push(addr);
    }
    let mut host_nodes = BTreeMap::new();
    host_nodes.insert(host_id, rc);
    chassis
        .materialize(&mut topo, &host_nodes)
        .expect("materialize chassis");

    let gpus = slots
        .iter()
        .map(|&addr| {
            let nodes = chassis.slot_nodes(addr).expect("materialized");
            GpuHandle {
                core: nodes.endpoint,
                port: nodes.port,
                spec: gpu.clone(),
                falcon_attached: true,
            }
        })
        .collect();

    let cluster = Cluster {
        host_rc: rc,
        host_mem: mem,
        gpus,
        storage_dev: nvme.device,
        storage: nvme_spec,
        storage_falcon_attached: false,
        cpu: host.cpu,
        dram: host.dram,
        label: format!("falcon-{}x{}", n_gpus, gpu.name),
    };

    Composed {
        topology: topo,
        cluster,
        chassis,
    }
}

/// Compose a host whose GPUs sit at *exactly* the given chassis slots —
/// the building block the cluster scheduler uses to price a candidate
/// placement. A job kept inside one drawer communicates over that drawer's
/// switch; a job split across drawers pays the cross-domain path through
/// the host root complex, which is what makes placement quality visible
/// in the simulated training time. Storage is the local NVMe.
pub fn build_falcon_slots(gpu: &GpuSpec, slots: &[SlotAddr]) -> Composed {
    assert!(
        !slots.is_empty() && slots.len() <= 16,
        "a placement uses 1..=16 chassis slots"
    );
    let host = HostSpec::default();
    let mut topo = Topology::new();
    let rc = topo.add_node("host0.rc", NodeKind::RootComplex);
    let mem = topo.add_node("host0.dram", NodeKind::Memory);
    topo.add_link(rc, mem, LinkSpec::of(LinkClass::MemoryBus));
    let nvme_spec = StorageSpec::intel_p4500_4tb();
    let nvme = add_storage(&mut topo, "host0.nvme", &nvme_spec);
    topo.add_link(nvme.port, rc, LinkSpec::of(LinkClass::PcieGen3x4));

    // Advanced mode so any slot subset is attachable to the one host.
    let mut chassis = Falcon4016::new("falcon0", Mode::Advanced);
    let host_id = HostId(0);
    chassis
        .connect_host(HostPort::H1, host_id, DrawerId(0))
        .expect("cable drawer 0");
    chassis
        .connect_host(HostPort::H2, host_id, DrawerId(1))
        .expect("cable drawer 1");
    for &addr in slots {
        chassis
            .insert_device(addr, SlotDevice::Gpu(gpu.clone()))
            .expect("insert GPU");
        chassis.attach(addr, host_id).expect("attach GPU");
    }
    let mut host_nodes = BTreeMap::new();
    host_nodes.insert(host_id, rc);
    chassis
        .materialize(&mut topo, &host_nodes)
        .expect("materialize chassis");

    let gpus = slots
        .iter()
        .map(|&addr| {
            let nodes = chassis.slot_nodes(addr).expect("materialized");
            GpuHandle {
                core: nodes.endpoint,
                port: nodes.port,
                spec: gpu.clone(),
                falcon_attached: true,
            }
        })
        .collect();

    let cluster = Cluster {
        host_rc: rc,
        host_mem: mem,
        gpus,
        storage_dev: nvme.device,
        storage: nvme_spec,
        storage_falcon_attached: false,
        cpu: host.cpu,
        dram: host.dram,
        label: format!(
            "falcon-slots[{}]",
            slots
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    };

    Composed {
        topology: topo,
        cluster,
        chassis,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_falcon_host_composes_any_count() {
        for n in [1usize, 3, 4, 8] {
            let c = build_custom_falcon_host(&GpuSpec::p100_pcie_16gb(), n);
            assert_eq!(c.cluster.n_gpus(), n);
            assert!(c.cluster.gpus.iter().all(|g| g.falcon_attached));
            let mut topo = c.topology.clone();
            for g in &c.cluster.gpus {
                assert!(topo.route(c.cluster.host_rc, g.core).is_some());
            }
        }
    }

    #[test]
    fn slot_placements_compose_and_split_costs_show() {
        let spec = GpuSpec::v100_pcie_16gb();
        let whole: Vec<SlotAddr> = (0..4).map(|s| SlotAddr::new(0, s)).collect();
        let split: Vec<SlotAddr> = vec![
            SlotAddr::new(0, 0),
            SlotAddr::new(0, 1),
            SlotAddr::new(1, 0),
            SlotAddr::new(1, 1),
        ];
        let mut w = build_falcon_slots(&spec, &whole);
        let mut s = build_falcon_slots(&spec, &split);
        assert_eq!(w.cluster.n_gpus(), 4);
        assert_eq!(s.cluster.n_gpus(), 4);
        // Same-drawer GPU pairs route over one switch; the split placement's
        // cross-drawer pair pays the root-complex crossing.
        let rw = w
            .topology
            .route(w.cluster.gpus[0].core, w.cluster.gpus[3].core)
            .unwrap();
        let rs = s
            .topology
            .route(s.cluster.gpus[0].core, s.cluster.gpus[3].core)
            .unwrap();
        assert!(rs.hop_count() > rw.hop_count());
    }

    #[test]
    fn local_gpus_config_shape() {
        let c = build_config(HostConfig::LocalGpus);
        assert_eq!(c.cluster.n_gpus(), 8);
        assert!(c.cluster.gpus.iter().all(|g| !g.falcon_attached));
        assert_eq!(c.cluster.storage.name, StorageSpec::sata_ssd().name);
        // No falcon PCIe links to monitor.
        assert!(c
            .cluster
            .monitored_pcie_links(&c.topology)
            .is_empty());
    }

    #[test]
    fn falcon_gpus_config_shape() {
        let mut c = build_config(HostConfig::FalconGpus);
        assert_eq!(c.cluster.n_gpus(), 8);
        assert!(c.cluster.gpus.iter().all(|g| g.falcon_attached));
        assert_eq!(c.cluster.monitored_pcie_links(&c.topology).len(), 16);
        // Host can reach every falcon GPU.
        for g in &c.cluster.gpus.clone() {
            assert!(c.topology.route(c.cluster.host_rc, g.core).is_some());
        }
    }

    #[test]
    fn hybrid_is_half_and_half() {
        let c = build_config(HostConfig::HybridGpus);
        let falcon = c.cluster.gpus.iter().filter(|g| g.falcon_attached).count();
        assert_eq!(falcon, 4);
        assert_eq!(c.cluster.n_gpus(), 8);
    }

    #[test]
    fn storage_configs_pick_the_right_device() {
        let l = build_config(HostConfig::LocalNvme);
        assert!(l.cluster.storage.name.contains("NVMe"));
        assert!(!l.cluster.storage_falcon_attached);
        let f = build_config(HostConfig::FalconNvme);
        assert!(f.cluster.storage.name.contains("NVMe"));
        assert!(f.cluster.storage_falcon_attached);
        let base = build_config(HostConfig::LocalGpus);
        assert!(base.cluster.storage.name.contains("SATA"));
    }

    #[test]
    fn falcon_nvme_pays_a_switch_crossing() {
        let mut f = build_config(HostConfig::FalconNvme);
        let mut l = build_config(HostConfig::LocalNvme);
        let rf = f
            .topology
            .route(f.cluster.storage_dev, f.cluster.host_mem)
            .unwrap();
        let rl = l
            .topology
            .route(l.cluster.storage_dev, l.cluster.host_mem)
            .unwrap();
        assert!(rf.hop_count() > rl.hop_count());
        assert!(rf.latency > rl.latency);
    }

    #[test]
    fn cross_drawer_gpu_path_is_the_slow_one() {
        // The falconGPUs config's cross-drawer ring edges pay the
        // cross-domain root-complex penalty.
        let mut c = build_config(HostConfig::FalconGpus);
        let same_drawer = c
            .topology
            .route(c.cluster.gpus[0].core, c.cluster.gpus[1].core)
            .unwrap();
        let cross_drawer = c
            .topology
            .route(c.cluster.gpus[0].core, c.cluster.gpus[4].core)
            .unwrap();
        assert!(cross_drawer.path_efficiency < same_drawer.path_efficiency * 0.7);
    }

    #[test]
    fn management_plane_still_works_after_composition() {
        let c = build_config(HostConfig::FalconGpus);
        let list = falcon::mgmt::resource_list(&c.chassis);
        // 8 GPUs + 1 NVMe inserted in the chassis.
        assert_eq!(list.len(), 9);
        let owned = list.iter().filter(|r| r.owner.is_some()).count();
        assert_eq!(owned, 8, "all falcon GPUs attached, NVMe left detached");
    }
}
