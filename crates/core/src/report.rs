//! Text rendering of the paper's tables and figure series.

use desim::stats::Summary;
use training::RunReport;

/// Render a simple aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&render_row(&sep, &widths));
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// A unicode sparkline of a series (the figure traces, one char per point).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let s = Summary::of(values);
    let span = (s.max - s.min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - s.min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// One labeled series line, e.g. for the Fig 9 utilization traces.
pub fn series_line(label: &str, values: &[f64], unit: &str) -> String {
    let s = Summary::of(values);
    format!(
        "{label:12} {} min={:.2}{unit} mean={:.2}{unit} max={:.2}{unit}",
        sparkline(values),
        s.min,
        s.mean,
        s.max
    )
}

/// Percent with sign, e.g. `+12.3%`.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Gigabytes per second.
pub fn gbps(bytes_per_sec: f64) -> String {
    format!("{:.2} GB/s", bytes_per_sec / 1e9)
}

/// One row summarizing a run.
pub fn run_row(r: &RunReport) -> Vec<String> {
    vec![
        r.benchmark.clone(),
        r.label.clone(),
        format!("{}", r.total_time),
        format!("{}", r.mean_iter),
        format!("{:.1}/s", r.throughput),
        format!("{:.0}%", r.gpu_util * 100.0),
        format!("{:.0}%", r.cpu_util * 100.0),
    ]
}

/// Render a set of run reports as CSV (header + one row per run) for
/// downstream plotting.
pub fn runs_to_csv(reports: &[&RunReport]) -> String {
    let mut out = String::from(
        "benchmark,config,total_secs,mean_iter_secs,throughput,gpu_util,cpu_util,\
host_mem_util,gpu_mem_util,gpu_mem_access_share,falcon_pcie_gbps,exposed_comm_share,input_stall_share\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            r.benchmark,
            r.label,
            r.total_time.as_secs_f64(),
            r.mean_iter.as_secs_f64(),
            r.throughput,
            r.gpu_util,
            r.cpu_util,
            r.host_mem_util,
            r.gpu_mem_util,
            r.gpu_mem_access_share,
            r.falcon_pcie_rate / 1e9,
            r.exposed_comm_share,
            r.input_stall_share,
        ));
    }
    out
}

pub const RUN_HEADERS: [&str; 7] = [
    "benchmark",
    "config",
    "total",
    "iter",
    "throughput",
    "GPU",
    "CPU",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long-header"],
            &[vec!["xxxx".into(), "y".into()], vec!["z".into(), "w".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let widths: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{t}");
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn pct_and_gbps_format() {
        assert_eq!(pct(12.34), "+12.3%");
        assert_eq!(pct(-3.0), "-3.0%");
        assert_eq!(gbps(76.43e9), "76.43 GB/s");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = crate::runner::run(
            dlmodels::Benchmark::MobileNetV2,
            crate::HostConfig::LocalGpus,
            &crate::runner::ExperimentOpts::scaled(2),
        )
        .unwrap();
        let csv = runs_to_csv(&[&r, &r]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("benchmark,config,"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
        assert!(lines[1].contains("MobileNetV2"));
    }

    #[test]
    fn constant_series_does_not_panic() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
    }
}
