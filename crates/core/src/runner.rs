//! The experiment runner: run paper benchmarks on composed configurations.

use crate::config::HostConfig;
use crate::system::build_config;
use dlmodels::{Benchmark, Precision};
use training::engine::TrainError;
use training::{run_job, JobConfig, RunReport, Strategy};

/// Options controlling an experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Cap on iterations per epoch (`None` = full dataset, as the paper).
    pub iters_per_epoch: Option<u64>,
    /// Override epoch count (`None` = the paper's per-benchmark epochs).
    pub epochs: Option<u32>,
    pub strategy: Strategy,
    pub precision: Precision,
    /// Override the per-GPU batch (`None` = the paper's batch).
    pub per_gpu_batch: Option<u64>,
    /// Write epoch-end checkpoints (disable to isolate steady-state
    /// iteration behavior in heavily scaled-down runs).
    pub checkpoint: bool,
    /// Clamp the batch to the largest per-GPU batch that fits in GPU
    /// memory under the chosen strategy/precision (how the Fig 16 study
    /// picks batches for memory-hungry variants).
    pub auto_batch: bool,
    pub seed: u64,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            iters_per_epoch: None,
            epochs: None,
            strategy: Strategy::ddp(),
            precision: Precision::Fp16,
            per_gpu_batch: None,
            checkpoint: true,
            auto_batch: false,
            seed: 0xC0FFEE,
        }
    }
}

impl ExperimentOpts {
    /// A scaled-down run: `iters` iterations per epoch, 2 epochs. The
    /// steady-state per-iteration behavior (and hence every relative
    /// comparison in the paper) is unchanged; only wall-clock shrinks.
    pub fn scaled(iters: u64) -> ExperimentOpts {
        ExperimentOpts {
            iters_per_epoch: Some(iters),
            epochs: Some(2),
            ..ExperimentOpts::default()
        }
    }

    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    pub fn with_batch(mut self, per_gpu_batch: u64) -> Self {
        self.per_gpu_batch = Some(per_gpu_batch);
        self
    }

    pub fn without_checkpoints(mut self) -> Self {
        self.checkpoint = false;
        self
    }

    pub fn with_auto_batch(mut self) -> Self {
        self.auto_batch = true;
        self
    }

    fn job_config(&self, benchmark: Benchmark, n_gpus: usize) -> JobConfig {
        let mut cfg = JobConfig::paper(benchmark, n_gpus);
        if let Some(iters) = self.iters_per_epoch {
            cfg.max_iters_per_epoch = Some(iters);
        }
        if let Some(epochs) = self.epochs {
            cfg.epochs = epochs;
        }
        if let Some(b) = self.per_gpu_batch {
            cfg.per_gpu_batch = b;
        }
        cfg.strategy = self.strategy;
        cfg.precision = self.precision;
        cfg.checkpoint_each_epoch = self.checkpoint;
        cfg.seed = self.seed;
        cfg
    }
}

/// Run one benchmark on one configuration.
pub fn run(
    benchmark: Benchmark,
    config: HostConfig,
    opts: &ExperimentOpts,
) -> Result<RunReport, TrainError> {
    let composed = build_config(config);
    let mut cfg = opts.job_config(benchmark, composed.cluster.n_gpus());
    if opts.auto_batch {
        let capacity = composed
            .cluster
            .gpus
            .iter()
            .map(|g| g.spec.memory_bytes)
            .fold(f64::INFINITY, f64::min);
        let model = training::engine::model_for(benchmark);
        let max = training::max_feasible_batch(
            &model,
            capacity,
            cfg.precision,
            cfg.strategy,
            composed.cluster.n_gpus(),
        );
        cfg.per_gpu_batch = cfg.per_gpu_batch.min(max.max(1));
    }
    run_job(composed.topology, composed.cluster, cfg)
}

/// Run a sweep of `(benchmark, config)` cells on [`parsweep::default_jobs`]
/// workers. Each simulation is single-threaded and deterministic; the
/// sweep is embarrassingly parallel and results come back in cell order,
/// so output is byte-identical to running serially.
pub fn sweep(
    cells: &[(Benchmark, HostConfig)],
    opts: &ExperimentOpts,
) -> Vec<Result<RunReport, TrainError>> {
    sweep_jobs(cells, opts, parsweep::default_jobs())
}

/// [`sweep`] with an explicit worker count (a bounded work-stealing pool,
/// not one thread per cell — a 25-cell paper grid no longer oversubscribes
/// a small machine).
pub fn sweep_jobs(
    cells: &[(Benchmark, HostConfig)],
    opts: &ExperimentOpts,
    jobs: usize,
) -> Vec<Result<RunReport, TrainError>> {
    parsweep::run(
        jobs,
        cells
            .iter()
            .map(|&(benchmark, config)| {
                parsweep::Job::new(format!("{} on {config:?}", benchmark.label()), move || {
                    run(benchmark, config, opts)
                })
            })
            .collect(),
    )
}

/// Convenience: run every benchmark on every GPU configuration (the
/// Fig 10–14 grid).
pub fn gpu_config_grid(opts: &ExperimentOpts) -> Vec<(Benchmark, HostConfig, RunReport)> {
    let cells: Vec<(Benchmark, HostConfig)> = Benchmark::all()
        .into_iter()
        .flat_map(|b| HostConfig::gpu_configs().into_iter().map(move |c| (b, c)))
        .collect();
    sweep(&cells, opts)
        .into_iter()
        .zip(&cells)
        .map(|(r, &(b, c))| (b, c, r.expect("paper grid cells all fit in memory")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_runs_on_local_gpus() {
        let r = run(
            Benchmark::ResNet50,
            HostConfig::LocalGpus,
            &ExperimentOpts::scaled(5),
        )
        .unwrap();
        assert_eq!(r.iterations, 10, "2 epochs x 5 iters");
        assert!(r.total_time.as_secs_f64() > 0.0);
        assert!(r.gpu_util > 0.3, "gpu util {}", r.gpu_util);
        assert!(r.throughput > 0.0);
    }

    #[test]
    fn determinism_across_runs() {
        let opts = ExperimentOpts::scaled(4);
        let a = run(Benchmark::BertBase, HostConfig::FalconGpus, &opts).unwrap();
        let b = run(Benchmark::BertBase, HostConfig::FalconGpus, &opts).unwrap();
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.gpu_util_trace, b.gpu_util_trace);
    }

    #[test]
    fn sweep_matches_individual_runs() {
        let opts = ExperimentOpts::scaled(3);
        let cells = [
            (Benchmark::MobileNetV2, HostConfig::LocalGpus),
            (Benchmark::MobileNetV2, HostConfig::FalconGpus),
        ];
        let swept = sweep(&cells, &opts);
        for (res, &(b, c)) in swept.iter().zip(&cells) {
            let solo = run(b, c, &opts).unwrap();
            assert_eq!(res.as_ref().unwrap().total_time, solo.total_time);
        }
    }

    #[test]
    fn oom_is_reported_not_hidden() {
        // BERT-large at an absurd batch cannot fit on a 16 GB V100.
        let opts = ExperimentOpts::scaled(2).with_batch(64);
        let err = run(Benchmark::BertLarge, HostConfig::LocalGpus, &opts).unwrap_err();
        assert!(matches!(err, TrainError::OutOfMemory { .. }));
    }

    #[test]
    fn falcon_pcie_traffic_only_on_falcon_configs() {
        let opts = ExperimentOpts::scaled(3);
        let local = run(Benchmark::ResNet50, HostConfig::LocalGpus, &opts).unwrap();
        let falcon = run(Benchmark::ResNet50, HostConfig::FalconGpus, &opts).unwrap();
        assert_eq!(local.falcon_pcie_rate, 0.0);
        assert!(falcon.falcon_pcie_rate > 1e9, "{}", falcon.falcon_pcie_rate);
    }
}
