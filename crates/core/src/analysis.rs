//! Cross-experiment analyses built on top of the runner — the quantities a
//! co-design team would extract from the paper's characterization.
//!
//! * [`overhead_curve`] — Falcon-switching overhead as a function of model
//!   size (the paper's Fig 11 correlation, §V-C.2, as an explicit curve).
//! * [`disaggregation_crossover`] — the synthetic-model size at which the
//!   overhead crosses a tolerance threshold: "how large a model can I
//!   still pool behind the switch?" — the co-design question the test bed
//!   exists to answer.
//! * [`exposed_comm_breakdown`] — where each configuration's iteration
//!   time goes (compute vs exposed communication vs input stalls).

use crate::config::HostConfig;
use crate::runner::{run, ExperimentOpts};
use dlmodels::Benchmark;
use training::engine::model_for;

/// One point of the overhead-vs-size curve.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    pub benchmark: Benchmark,
    pub params: u64,
    /// Per-iteration slowdown of `config` vs localGPUs, in percent.
    pub overhead_pct: f64,
}

/// The Fig 11 correlation as data: overhead of `config` vs localGPUs for
/// all five benchmarks, ordered by parameter count.
pub fn overhead_curve(config: HostConfig, opts: &ExperimentOpts) -> Vec<OverheadPoint> {
    let mut points: Vec<OverheadPoint> = Benchmark::all()
        .into_iter()
        .map(|b| {
            let base = run(b, HostConfig::LocalGpus, opts).expect("baseline fits");
            let other = run(b, config, opts).expect("config fits");
            OverheadPoint {
                benchmark: b,
                params: model_for(b).param_count(),
                overhead_pct: (other.mean_iter.as_secs_f64() / base.mean_iter.as_secs_f64()
                    - 1.0)
                    * 100.0,
            }
        })
        .collect();
    points.sort_by_key(|p| p.params);
    points
}

/// Estimate (by linear interpolation over the measured curve) the
/// parameter count at which `config`'s overhead crosses
/// `tolerance_pct`. Returns `None` when the tolerance is never crossed
/// within the measured range.
pub fn disaggregation_crossover(
    curve: &[OverheadPoint],
    tolerance_pct: f64,
) -> Option<f64> {
    for pair in curve.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let (lo, hi) = (
            a.overhead_pct.min(b.overhead_pct),
            a.overhead_pct.max(b.overhead_pct),
        );
        if tolerance_pct >= lo && tolerance_pct <= hi && a.overhead_pct != b.overhead_pct {
            let t = (tolerance_pct - a.overhead_pct) / (b.overhead_pct - a.overhead_pct);
            return Some(a.params as f64 + t * (b.params as f64 - a.params as f64));
        }
    }
    None
}

/// Time breakdown of one run, as shares of total time.
#[derive(Debug, Clone, Copy)]
pub struct TimeBreakdown {
    pub exposed_comm: f64,
    pub input_stall: f64,
    /// Everything else: compute + overlapped communication + optimizer.
    pub busy: f64,
}

/// Where the time goes for `benchmark` on `config`.
pub fn exposed_comm_breakdown(
    benchmark: Benchmark,
    config: HostConfig,
    opts: &ExperimentOpts,
) -> TimeBreakdown {
    let r = run(benchmark, config, opts).expect("cell fits");
    TimeBreakdown {
        exposed_comm: r.exposed_comm_share,
        input_stall: r.input_stall_share,
        busy: (1.0 - r.exposed_comm_share - r.input_stall_share).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExperimentOpts {
        ExperimentOpts::scaled(8).without_checkpoints()
    }

    #[test]
    fn overhead_curve_is_sorted_and_increasing_at_extremes() {
        let curve = overhead_curve(HostConfig::FalconGpus, &opts());
        assert_eq!(curve.len(), 5);
        assert!(curve.windows(2).all(|w| w[0].params <= w[1].params));
        // Smallest model has the least overhead; largest the most.
        assert!(curve[0].overhead_pct < curve[4].overhead_pct);
        assert!(curve[4].overhead_pct > 60.0, "BERT-L ~2x");
    }

    #[test]
    fn crossover_sits_between_yolo_and_bert_large() {
        let curve = overhead_curve(HostConfig::FalconGpus, &opts());
        // Where does the overhead pass 20%? Between YOLO (47M, <8%) and
        // BERT-L (335M, ~100%).
        let x = disaggregation_crossover(&curve, 20.0).expect("crossed in range");
        assert!(
            (47e6..335e6).contains(&x),
            "20% crossover at {:.0}M params",
            x / 1e6
        );
    }

    #[test]
    fn crossover_none_when_out_of_range() {
        let curve = overhead_curve(HostConfig::LocalGpus, &opts());
        // localGPUs vs itself: flat ~0% curve; a 50% tolerance never crosses.
        assert!(disaggregation_crossover(&curve, 50.0).is_none());
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let b = exposed_comm_breakdown(Benchmark::BertLarge, HostConfig::FalconGpus, &opts());
        let sum = b.exposed_comm + b.input_stall + b.busy;
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(b.exposed_comm > 0.2, "BERT-L on falcon is comm-bound");
        let local = exposed_comm_breakdown(Benchmark::BertLarge, HostConfig::LocalGpus, &opts());
        assert!(local.exposed_comm < b.exposed_comm);
    }
}
