//! `composable-core` — the public API of the composable-system study.
//!
//! This crate ties the substrates together into the paper's experiment
//! surface:
//!
//! * [`config::HostConfig`] — the five composed-host configurations of
//!   **Table III** (`localGPUs`, `hybridGPUs`, `falconGPUs`, `localNVMe`,
//!   `falconNVMe`).
//! * [`system`] — builds each configuration into a concrete fabric
//!   topology + cluster: the Supermicro host (2× Xeon 6148, 756 GB DRAM,
//!   8 NVLink-meshed V100 SXM2), the Falcon 4016 chassis with two drawers
//!   of V100 PCIe GPUs and an NVMe drive, CDFP host cabling (paper Fig 6).
//! * [`runner`] — runs DL benchmarks on a configuration and returns
//!   [`training::RunReport`]s; sweeps run configurations in parallel on
//!   host threads (each simulation stays single-threaded-deterministic).
//! * [`report`] — renders the paper's tables and figure series as text.
//! * [`recommend`] — the paper's stated future work (§VI): given a
//!   workload, simulate candidate compositions and recommend a topology.
//!
//! # Quickstart
//!
//! ```
//! use composable_core::{HostConfig, runner};
//! use dlmodels::Benchmark;
//!
//! let opts = runner::ExperimentOpts::scaled(5); // 5 iterations/epoch demo
//! let report = runner::run(Benchmark::ResNet50, HostConfig::LocalGpus, &opts).unwrap();
//! assert!(report.total_time.as_secs_f64() > 0.0);
//! ```

pub mod analysis;
pub mod config;
pub mod recommend;
pub mod report;
pub mod runner;
pub mod system;

pub use config::HostConfig;
pub use recommend::{recommend, recommend_jobs, Objective, Recommendation};
pub use runner::{run, sweep, sweep_jobs, ExperimentOpts};
pub use system::build_config;
