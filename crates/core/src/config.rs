//! The composed-host configurations of the paper's Table III.

use std::fmt;

/// Table I — the software stack of the paper's test bed, kept as data so
/// the reproduction records exactly which stack's behavior it models.
pub fn software_stack() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Operating system", "Ubuntu 18.04"),
        ("DL Framework", "PyTorch 1.7.1"),
        ("CUDA", "10.2.89"),
        ("CUDA Driver", "450.102.04"),
        ("CUDNN", "cudnn7.6.5"),
        ("NCCL", "NCCL 2.8.4"),
        ("Profilers", "wandb 0.10.14; Nsight Systems 2020.4.3.7; Nsight Compute 2020.3.0.0"),
        ("(this repo)", "composable-sim flow-level DES, calibrated to Table IV"),
    ]
}

/// One row of Table III: how the host's GPUs and storage are composed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostConfig {
    /// 8 local GPUs and local storage.
    LocalGpus,
    /// 4 local GPUs, 4 falcon GPUs, and local storage.
    HybridGpus,
    /// 8 falcon-attached GPUs (and local storage).
    FalconGpus,
    /// 8 local GPUs and local NVMe.
    LocalNvme,
    /// 8 local GPUs and falcon-attached NVMe.
    FalconNvme,
}

impl HostConfig {
    /// All five configurations, in Table III order.
    pub fn all() -> [HostConfig; 5] {
        [
            HostConfig::LocalGpus,
            HostConfig::HybridGpus,
            HostConfig::FalconGpus,
            HostConfig::LocalNvme,
            HostConfig::FalconNvme,
        ]
    }

    /// The three GPU-placement configurations of Figs 10–14.
    pub fn gpu_configs() -> [HostConfig; 3] {
        [
            HostConfig::LocalGpus,
            HostConfig::HybridGpus,
            HostConfig::FalconGpus,
        ]
    }

    /// The storage-study configurations of Fig 15 (baseline first).
    pub fn storage_configs() -> [HostConfig; 3] {
        [
            HostConfig::LocalGpus,
            HostConfig::LocalNvme,
            HostConfig::FalconNvme,
        ]
    }

    /// The paper's label for the configuration.
    pub fn label(self) -> &'static str {
        match self {
            HostConfig::LocalGpus => "localGPUs",
            HostConfig::HybridGpus => "hybridGPUs",
            HostConfig::FalconGpus => "falconGPUs",
            HostConfig::LocalNvme => "localNVMe",
            HostConfig::FalconNvme => "falconNVMe",
        }
    }

    /// Table III's description column.
    pub fn description(self) -> &'static str {
        match self {
            HostConfig::LocalGpus => "8 local GPUs and local storage",
            HostConfig::HybridGpus => "4 local GPUs, 4 falcon GPUs, and local storage",
            HostConfig::FalconGpus => "8 falcon-attached GPUs",
            HostConfig::LocalNvme => "8 local GPUs and local NVMe",
            HostConfig::FalconNvme => "8 local GPUs and falcon-attached NVMe",
        }
    }

    /// Does any GPU sit behind the Falcon switch?
    pub fn has_falcon_gpus(self) -> bool {
        matches!(self, HostConfig::HybridGpus | HostConfig::FalconGpus)
    }
}

impl fmt::Display for HostConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_configs_in_order() {
        let all = HostConfig::all();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].label(), "localGPUs");
        assert_eq!(all[4].label(), "falconNVMe");
    }

    #[test]
    fn falcon_gpu_detection() {
        assert!(!HostConfig::LocalGpus.has_falcon_gpus());
        assert!(HostConfig::HybridGpus.has_falcon_gpus());
        assert!(HostConfig::FalconGpus.has_falcon_gpus());
        assert!(!HostConfig::FalconNvme.has_falcon_gpus());
    }

    #[test]
    fn software_stack_has_the_paper_rows() {
        let t = software_stack();
        assert!(t.iter().any(|(k, v)| *k == "DL Framework" && v.contains("PyTorch 1.7.1")));
        assert!(t.iter().any(|(k, v)| *k == "NCCL" && v.contains("2.8.4")));
        assert!(t.len() >= 7);
    }

    #[test]
    fn labels_round_trip_table_iii() {
        for c in HostConfig::all() {
            assert!(!c.description().is_empty());
            assert_eq!(format!("{c}"), c.label());
        }
    }
}
