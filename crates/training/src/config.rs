//! Job configuration: benchmark, batch sizes, epochs, precision, strategy.

use dlmodels::{Benchmark, Precision};

/// Data-parallel training strategy (paper §V-C.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// PyTorch DistributedDataParallel with NCCL: bucketed ring allreduce
    /// overlapped with backward.
    Ddp {
        /// Gradient bucket size in bytes (PyTorch default 25 MiB).
        bucket_bytes: f64,
    },
    /// Single-process DataParallel: master-replica broadcast + reduce, no
    /// overlap, and single-process dispatch dilation.
    Dp,
    /// ZeRO-style sharded data parallel: reduce-scatter gradients
    /// (overlapped), shard optimizer state n-ways, all-gather updated
    /// parameters (overlapped into the next iteration's data phase).
    Sharded {
        bucket_bytes: f64,
    },
}

impl Strategy {
    pub fn ddp() -> Strategy {
        Strategy::Ddp {
            bucket_bytes: 25.0 * 1024.0 * 1024.0,
        }
    }

    pub fn sharded() -> Strategy {
        Strategy::Sharded {
            bucket_bytes: 25.0 * 1024.0 * 1024.0,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Strategy::Ddp { .. } => "DDP",
            Strategy::Dp => "DP",
            Strategy::Sharded { .. } => "DDP+sharded",
        }
    }
}

/// Per-iteration kernel-dispatch dilation of single-process DataParallel:
/// one Python process serially launches work for every replica (GIL +
/// scatter/gather on the master). Calibrated so 8-GPU DP reproduces the
/// paper's ">80 % DDP speedup over DP" for BERT-large on local GPUs.
pub fn dp_dispatch_dilation(n_gpus: usize) -> f64 {
    1.0 + 0.08 * (n_gpus.saturating_sub(1)) as f64
}

/// A training-job configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JobConfig {
    pub benchmark: Benchmark,
    /// Per-GPU batch size.
    pub per_gpu_batch: u64,
    pub epochs: u32,
    /// Cap on iterations per epoch (scale a simulation down while keeping
    /// steady-state behavior; `None` runs the full dataset).
    pub max_iters_per_epoch: Option<u64>,
    pub precision: Precision,
    pub strategy: Strategy,
    /// Dataloader workers per GPU process.
    pub workers_per_gpu: u32,
    /// Prefetch depth (batches queued ahead) per GPU.
    pub prefetch_depth: u32,
    /// Write a checkpoint at every epoch boundary.
    pub checkpoint_each_epoch: bool,
    /// RNG seed for the run.
    pub seed: u64,
    /// Relative jitter on kernel durations (straggler effect).
    pub jitter_frac: f64,
}

impl JobConfig {
    /// The paper's configuration for a benchmark (paper §V-C.1), on
    /// `n_gpus` GPUs. Batch-size semantics follow each framework's
    /// convention: the torchvision-style ImageNet scripts take a *per-GPU*
    /// batch (MobileNetV2 64, ResNet-50 128), while Ultralytics YOLOv5 and
    /// HuggingFace SQuAD fine-tuning take a *global* batch split across
    /// GPUs (YOLO 88, BERT 96, BERT-L 48).
    pub fn paper(benchmark: Benchmark, n_gpus: usize) -> JobConfig {
        let (per_gpu_batch, epochs) = paper_batch(benchmark, n_gpus);
        JobConfig {
            benchmark,
            per_gpu_batch,
            epochs,
            max_iters_per_epoch: None,
            precision: Precision::Fp16,
            strategy: Strategy::ddp(),
            workers_per_gpu: 5,
            prefetch_depth: 2,
            checkpoint_each_epoch: true,
            seed: 0xC0FFEE,
            jitter_frac: 0.015,
        }
    }

    /// A scaled-down version of [`JobConfig::paper`] for fast simulation:
    /// same steady-state behavior, fewer iterations.
    pub fn paper_scaled(benchmark: Benchmark, n_gpus: usize, iters_per_epoch: u64) -> JobConfig {
        JobConfig {
            max_iters_per_epoch: Some(iters_per_epoch),
            epochs: 2,
            ..JobConfig::paper(benchmark, n_gpus)
        }
    }

    pub fn with_strategy(mut self, strategy: Strategy) -> JobConfig {
        self.strategy = strategy;
        self
    }

    pub fn with_precision(mut self, precision: Precision) -> JobConfig {
        self.precision = precision;
        self
    }

    pub fn with_batch(mut self, per_gpu_batch: u64) -> JobConfig {
        self.per_gpu_batch = per_gpu_batch;
        self
    }
}

/// `(per_gpu_batch, epochs)` as run in the paper (§V-C.1).
pub fn paper_batch(benchmark: Benchmark, n_gpus: usize) -> (u64, u32) {
    let n = n_gpus.max(1) as u64;
    match benchmark {
        Benchmark::MobileNetV2 => (64, 10),
        Benchmark::ResNet50 => (128, 20),
        Benchmark::YoloV5L => ((88 / n).max(1), 20),
        Benchmark::BertBase => ((96 / n).max(1), 2),
        Benchmark::BertLarge => ((48 / n).max(1), 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_batches_match_section_v() {
        assert_eq!(paper_batch(Benchmark::MobileNetV2, 8), (64, 10));
        assert_eq!(paper_batch(Benchmark::ResNet50, 8), (128, 20));
        assert_eq!(paper_batch(Benchmark::YoloV5L, 8), (11, 20));
        assert_eq!(paper_batch(Benchmark::BertBase, 8), (12, 2));
        assert_eq!(paper_batch(Benchmark::BertLarge, 8), (6, 2));
    }

    #[test]
    fn paper_config_defaults() {
        let c = JobConfig::paper(Benchmark::BertLarge, 8);
        assert_eq!(c.per_gpu_batch, 6);
        assert_eq!(c.precision, Precision::Fp16);
        assert_eq!(c.strategy.label(), "DDP");
    }

    #[test]
    fn scaled_config_caps_iterations() {
        let c = JobConfig::paper_scaled(Benchmark::ResNet50, 8, 50);
        assert_eq!(c.max_iters_per_epoch, Some(50));
        assert_eq!(c.epochs, 2);
    }

    #[test]
    fn dp_dilation_grows_with_gpus() {
        assert_eq!(dp_dispatch_dilation(1), 1.0);
        assert!((dp_dispatch_dilation(8) - 1.56).abs() < 1e-12);
    }

    #[test]
    fn builder_methods() {
        let c = JobConfig::paper(Benchmark::BertLarge, 8)
            .with_strategy(Strategy::Dp)
            .with_precision(Precision::Fp32)
            .with_batch(4);
        assert_eq!(c.strategy.label(), "DP");
        assert_eq!(c.precision, Precision::Fp32);
        assert_eq!(c.per_gpu_batch, 4);
    }
}
