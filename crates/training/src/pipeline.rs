//! The data-loading pipeline: storage → host memory → CPU preprocessing →
//! per-GPU ready queues (paper Fig 8, left half).
//!
//! Each GPU process owns a prefetching dataloader with
//! `workers_per_gpu` CPU workers. Storage reads are real fabric flows (so
//! a Falcon-attached NVMe pays its switch crossing and concurrent loaders
//! share the device), and the OS page cache is modeled: once the dataset
//! has been read and it fits in host DRAM, later epochs hit memory
//! (ImageNet ≈ 141 GB against 756 GB of DRAM — the reason the paper's
//! storage study, Fig 15, is dominated by first-epoch reads and
//! checkpoint writes).

use crate::engine::{on_batch_ready, TrainWorld};
use desim::{Dur, Sim};
use fabric::FlowTag;

/// Pipeline state for one run.
#[derive(Debug)]
pub struct PipelineState {
    /// Ready (preprocessed, pinned) batches per GPU.
    pub queues: Vec<u32>,
    producing: Vec<bool>,
    batches_left: Vec<u64>,
    pub batches_per_epoch_per_gpu: u64,
    /// Bytes of the dataset not yet resident in the page cache.
    cold_bytes_remaining: f64,
    dataset_bytes: f64,
    dataset_fits_in_cache: bool,
    /// Storage reads per sample (YOLO's mosaic augmentation touches 4
    /// images per training sample).
    reads_per_sample: f64,
    /// Host-memory baseline of the training processes.
    pub process_memory: f64,
}

impl PipelineState {
    pub fn new(
        n_gpus: usize,
        batches_per_epoch_per_gpu: u64,
        dataset_bytes: f64,
        dataset_fits_in_cache: bool,
        reads_per_sample: f64,
        process_memory: f64,
    ) -> PipelineState {
        PipelineState {
            queues: vec![0; n_gpus],
            producing: vec![false; n_gpus],
            batches_left: vec![0; n_gpus],
            batches_per_epoch_per_gpu,
            cold_bytes_remaining: dataset_bytes,
            dataset_bytes,
            dataset_fits_in_cache,
            reads_per_sample,
            process_memory,
        }
    }

    /// All GPUs have a batch ready?
    pub fn all_ready(&self) -> bool {
        self.queues.iter().all(|&q| q > 0)
    }

    /// Consume one batch from every queue (call only when [`all_ready`]).
    pub fn consume_all(&mut self) {
        for q in &mut self.queues {
            debug_assert!(*q > 0);
            *q -= 1;
        }
    }

    /// Fraction of the host DRAM used by the page cache + processes.
    pub fn host_mem_in_use(&self) -> f64 {
        self.process_memory + (self.dataset_bytes - self.cold_bytes_remaining)
    }
}

/// Begin an epoch: reset per-GPU batch budgets and kick every loader.
pub fn start_epoch(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    let n = w.pipeline.queues.len();
    for g in 0..n {
        w.pipeline.batches_left[g] = w.pipeline.batches_per_epoch_per_gpu;
    }
    for g in 0..n {
        maybe_produce(w, sim, g);
    }
}

/// Produce the next batch for GPU `g` if the loader is idle, the prefetch
/// queue has room, and the epoch has batches left.
pub fn maybe_produce(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>, g: usize) {
    let p = &mut w.pipeline;
    if p.producing[g] || p.batches_left[g] == 0 {
        return;
    }
    if p.queues[g] >= w.cfg.prefetch_depth {
        return;
    }
    p.producing[g] = true;
    p.batches_left[g] -= 1;

    // Storage stage: read the compressed samples that are not yet cached.
    let per_batch_bytes = w.cfg.per_gpu_batch as f64
        * w.model.dataset.disk_bytes_per_sample
        * p.reads_per_sample;
    let cold_frac = if p.dataset_bytes > 0.0 {
        (p.cold_bytes_remaining / p.dataset_bytes).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let read_bytes = per_batch_bytes * cold_frac;
    // The primary copy of each sample becomes cache-resident (if it fits).
    if p.dataset_fits_in_cache {
        let primary = w.cfg.per_gpu_batch as f64 * w.model.dataset.disk_bytes_per_sample;
        p.cold_bytes_remaining = (p.cold_bytes_remaining - primary).max(0.0);
    }
    let mem_now = p.host_mem_in_use();
    w.telemetry.host_mem_used.set(sim.now(), mem_now);

    if read_bytes > 1.0 {
        let (src, dst) = (w.cluster.storage_dev, w.cluster.host_mem);
        w.fabric.start_flow(
            sim,
            src,
            dst,
            read_bytes,
            FlowTag::STORAGE,
            Box::new(move |w: &mut TrainWorld, sim| preprocess(w, sim, g)),
        );
    } else {
        preprocess(w, sim, g);
    }
}

/// CPU stage: decode + augment the batch on this loader's workers, with
/// core contention across all loaders.
fn preprocess(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>, g: usize) {
    let n = w.pipeline.queues.len();
    let workers = w.cfg.workers_per_gpu.max(1);
    let total_demand = (workers as usize * n) as f64;
    let cores = w.cluster.cpu.cores as f64;
    let scale = (cores / total_demand).min(1.0);
    let used_cores = workers as f64 * scale;
    let core_seconds =
        w.cfg.per_gpu_batch as f64 * w.model.dataset.cpu_per_sample.as_secs_f64();
    let dur = Dur::from_secs_f64(core_seconds / used_cores);

    w.telemetry.cpu_cores_busy.add(sim.now(), used_cores);
    sim.schedule_in(dur, move |w: &mut TrainWorld, sim| {
        w.telemetry.cpu_cores_busy.add(sim.now(), -used_cores);
        h2d(w, sim, g);
    });
}

/// H2D stage: the preprocessed batch is copied to its GPU by the copy
/// engine, overlapping with whatever the SMs are doing (PyTorch's pinned-
/// memory `non_blocking` prefetch). Only when the copy lands does the
/// batch count as ready.
fn h2d(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>, g: usize) {
    let bytes =
        w.cfg.per_gpu_batch as f64 * w.model.h2d_bytes_per_sample(w.cfg.precision);
    let src = w.cluster.host_mem;
    let dst = w.cluster.gpus[g].core;
    w.fabric.start_flow(
        sim,
        src,
        dst,
        bytes,
        FlowTag::H2D,
        Box::new(move |w: &mut TrainWorld, sim| {
            w.pipeline.queues[g] += 1;
            w.pipeline.producing[g] = false;
            on_batch_ready(w, sim);
            maybe_produce(w, sim, g);
        }),
    );
}
