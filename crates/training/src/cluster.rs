//! The cluster description handed to the training engine.
//!
//! A [`Cluster`] names the fabric nodes of one composed host: its root
//! complex, host-memory node, GPUs (with specs and whether they sit behind
//! the Falcon), and the storage device feeding the data pipeline. The
//! `composable-core` crate builds these from Table III's configurations.

use devices::{CpuSpec, DramSpec, GpuSpec, StorageSpec};
use fabric::{DirLink, NodeId, Topology};

/// One GPU as seen by the engine.
#[derive(Debug, Clone)]
pub struct GpuHandle {
    pub core: NodeId,
    pub port: NodeId,
    pub spec: GpuSpec,
    /// True when the GPU sits in a Falcon drawer (its slot-link traffic is
    /// what the paper's Fig 12 monitors).
    pub falcon_attached: bool,
}

/// A composed host: the world the training job runs on.
#[derive(Debug, Clone)]
pub struct Cluster {
    pub host_rc: NodeId,
    /// The host DRAM node (staging area of the data pipeline).
    pub host_mem: NodeId,
    pub gpus: Vec<GpuHandle>,
    /// The storage device's media node.
    pub storage_dev: NodeId,
    pub storage: StorageSpec,
    pub storage_falcon_attached: bool,
    pub cpu: CpuSpec,
    pub dram: DramSpec,
    /// Human label of the configuration (Table III).
    pub label: String,
}

impl Cluster {
    pub fn n_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// The directed links the Falcon management GUI monitors for Fig 12:
    /// both directions of every falcon-attached GPU's external slot link
    /// (the port's link that is *not* the internal DMA link).
    pub fn monitored_pcie_links(&self, topo: &Topology) -> Vec<DirLink> {
        let mut out = Vec::new();
        for gpu in self.gpus.iter().filter(|g| g.falcon_attached) {
            for &dl in topo.links_of(gpu.port) {
                let link = topo.link(dl.link);
                let other = if link.a == gpu.port { link.b } else { link.a };
                if other != gpu.core {
                    out.push(fabric::DirLink::forward(dl.link));
                    out.push(fabric::DirLink::reverse(dl.link));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Cores of all GPUs, in index order (collective ring members).
    pub fn gpu_cores(&self) -> Vec<NodeId> {
        self.gpus.iter().map(|g| g.core).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::gpu::add_gpu;
    use devices::storage::add_storage;
    use fabric::{LinkClass, LinkSpec, NodeKind, Topology};

    fn tiny_cluster() -> (Cluster, Topology) {
        let mut topo = Topology::new();
        let rc = topo.add_node("rc", NodeKind::RootComplex);
        let mem = topo.add_node("mem", NodeKind::Memory);
        topo.add_link(rc, mem, LinkSpec::of(LinkClass::MemoryBus));
        let sw = topo.add_node("sw", NodeKind::PcieSwitch);
        topo.add_link(rc, sw, LinkSpec::of(LinkClass::Cdfp400));
        let mut gpus = Vec::new();
        for i in 0..2 {
            let spec = GpuSpec::v100_pcie_16gb();
            let g = add_gpu(&mut topo, &format!("f{i}"), &spec);
            topo.add_link(g.port, sw, LinkSpec::of(LinkClass::PcieGen4x16));
            gpus.push(GpuHandle {
                core: g.core,
                port: g.port,
                spec,
                falcon_attached: true,
            });
        }
        let local_spec = GpuSpec::v100_sxm2_16gb();
        let lg = add_gpu(&mut topo, "l0", &local_spec);
        topo.add_link(lg.port, rc, LinkSpec::of(LinkClass::PcieGen3x16));
        gpus.push(GpuHandle {
            core: lg.core,
            port: lg.port,
            spec: local_spec,
            falcon_attached: false,
        });
        let st = add_storage(&mut topo, "nvme", &StorageSpec::intel_p4500_4tb());
        topo.add_link(st.port, rc, LinkSpec::of(LinkClass::PcieGen3x4));
        let cluster = Cluster {
            host_rc: rc,
            host_mem: mem,
            gpus,
            storage_dev: st.device,
            storage: StorageSpec::intel_p4500_4tb(),
            storage_falcon_attached: false,
            cpu: CpuSpec::dual_xeon_6148(),
            dram: DramSpec::host_756gb(),
            label: "test".into(),
        };
        (cluster, topo)
    }

    #[test]
    fn monitored_links_cover_falcon_gpus_only() {
        let (c, topo) = tiny_cluster();
        let links = c.monitored_pcie_links(&topo);
        // Two falcon GPUs x two directions.
        assert_eq!(links.len(), 4);
    }

    #[test]
    fn gpu_cores_ordered() {
        let (c, _topo) = tiny_cluster();
        assert_eq!(c.gpu_cores().len(), 3);
        assert_eq!(c.n_gpus(), 3);
    }
}
