//! `training` — the deep-learning training-loop engine on the simulated
//! composable system.
//!
//! This crate reproduces the data path of the paper's Figure 8: batches
//! are read from **storage** into **host memory**, preprocessed by **CPU**
//! dataloader workers, copied over **PCIe** to each GPU, run through
//! forward/backward **GPU compute** (roofline-timed per layer), gradient-
//! synchronized with **NCCL-style collectives** (bucketed and overlapped
//! with backward under DDP), and finished with the optimizer step —
//! with periodic epoch-end checkpointing back to storage.
//!
//! Everything observable in the paper's evaluation is recorded by
//! [`telemetry::Telemetry`]: GPU utilization traces (Fig 9/10), GPU memory
//! occupancy and memory-access-time share (Fig 10), CPU utilization
//! (Fig 13), host memory (Fig 14), Falcon PCIe port traffic (Fig 12), and
//! training time (Figs 11/15/16).
//!
//! Parallelization strategies (paper §V-C.4, Fig 16):
//! * [`config::Strategy::Ddp`] — PyTorch DistributedDataParallel: one
//!   process per GPU, bucketed ring allreduce overlapped with backward.
//! * [`config::Strategy::Dp`] — single-process DataParallel: per-iteration
//!   parameter broadcast from the master GPU, unoverlapped gradient
//!   reduction to the master, and a kernel-dispatch dilation modeling the
//!   single Python process driving all replicas.
//! * [`config::Strategy::Sharded`] — ZeRO-style optimizer-state sharding:
//!   reduce-scatter + all-gather traffic, 1/n optimizer work, and the
//!   smaller per-GPU memory footprint that lets the batch size grow
//!   (6 → 10 for BERT-large in the paper).

pub mod cluster;
pub mod config;
pub mod engine;
pub mod memory;
pub mod pipeline;
pub mod telemetry;

pub use cluster::{Cluster, GpuHandle};
pub use config::{paper_batch, JobConfig, Strategy};
pub use engine::{run_job, TrainWorld};
pub use memory::{gpu_memory_needed, max_feasible_batch, MemoryBudget};
pub use telemetry::{RunReport, Telemetry};
