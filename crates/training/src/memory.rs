//! GPU memory accounting and batch-size feasibility.
//!
//! Reproduces the capacity arithmetic behind the paper's Fig 16 sharding
//! study: BERT-large under plain DDP fits a per-GPU batch of 6 on a 16 GB
//! V100, and ZeRO-style optimizer-state sharding across 8 GPUs lifts the
//! feasible batch to 10.

use crate::config::Strategy;
use dlmodels::{ModelDesc, Precision};

/// Per-GPU memory footprint breakdown (bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryBudget {
    pub params: f64,
    pub gradients: f64,
    pub optimizer: f64,
    pub activations: f64,
    /// CUDA context, NCCL buffers, framework workspace.
    pub framework_reserved: f64,
}

impl MemoryBudget {
    pub fn total(&self) -> f64 {
        self.params + self.gradients + self.optimizer + self.activations + self.framework_reserved
    }
}

/// Baseline CUDA/framework reservation per GPU.
pub const FRAMEWORK_RESERVED: f64 = 1.1e9;

/// Per-GPU memory needed to train `model` at `batch` under `strategy`.
pub fn gpu_memory_needed(
    model: &ModelDesc,
    batch: u64,
    precision: Precision,
    strategy: Strategy,
    n_gpus: usize,
) -> MemoryBudget {
    let n = n_gpus.max(1) as f64;
    let params = model.param_bytes(precision);
    let gradients = model.gradient_bytes(precision);
    let optimizer = model.optimizer_bytes(precision);
    let activations = model.activation_bytes_per_sample(precision) * batch as f64;
    let (gradients, optimizer) = match strategy {
        // ZeRO-2: optimizer states and gradients are partitioned n-ways.
        Strategy::Sharded { .. } => (gradients / n, optimizer / n),
        Strategy::Ddp { .. } | Strategy::Dp => (gradients, optimizer),
    };
    MemoryBudget {
        params,
        gradients,
        optimizer,
        activations,
        framework_reserved: FRAMEWORK_RESERVED,
    }
}

/// Largest per-GPU batch that fits in `capacity` bytes (0 when even the
/// model states alone overflow).
pub fn max_feasible_batch(
    model: &ModelDesc,
    capacity: f64,
    precision: Precision,
    strategy: Strategy,
    n_gpus: usize,
) -> u64 {
    let fixed = gpu_memory_needed(model, 0, precision, strategy, n_gpus).total();
    if fixed >= capacity {
        return 0;
    }
    let per_sample = model.activation_bytes_per_sample(precision);
    ((capacity - fixed) / per_sample).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlmodels::nlp::bert_large;
    use dlmodels::vision::resnet50;

    const V100: f64 = 16e9;

    #[test]
    fn bert_large_ddp_fits_paper_batch_of_six() {
        let m = bert_large(384);
        let need6 = gpu_memory_needed(&m, 6, Precision::Fp16, Strategy::ddp(), 8).total();
        assert!(need6 <= V100, "batch 6 must fit: {:.1} GB", need6 / 1e9);
        let max = max_feasible_batch(&m, V100, Precision::Fp16, Strategy::ddp(), 8);
        assert!(
            (6..=8).contains(&max),
            "plain DDP max batch should be near the paper's 6, got {max}"
        );
    }

    #[test]
    fn sharding_lifts_bert_large_to_ten() {
        let m = bert_large(384);
        let max = max_feasible_batch(&m, V100, Precision::Fp16, Strategy::sharded(), 8);
        assert!(
            (10..=12).contains(&max),
            "sharded max batch should be near the paper's 10, got {max}"
        );
        let need10 = gpu_memory_needed(&m, 10, Precision::Fp16, Strategy::sharded(), 8).total();
        assert!(need10 <= V100);
    }

    #[test]
    fn fp32_bert_large_is_tighter_than_fp16() {
        let m = bert_large(384);
        let f16 = max_feasible_batch(&m, V100, Precision::Fp16, Strategy::ddp(), 8);
        let f32 = max_feasible_batch(&m, V100, Precision::Fp32, Strategy::ddp(), 8);
        assert!(f32 < f16, "fp32 {f32} vs fp16 {f16}");
    }

    #[test]
    fn resnet_fits_large_batches() {
        let m = resnet50();
        let max = max_feasible_batch(&m, V100, Precision::Fp16, Strategy::ddp(), 8);
        assert!(max >= 128, "paper trains ResNet-50 at 128/GPU, max {max}");
    }

    #[test]
    fn breakdown_sums() {
        let m = resnet50();
        let b = gpu_memory_needed(&m, 32, Precision::Fp16, Strategy::ddp(), 8);
        assert!(
            (b.total() - (b.params + b.gradients + b.optimizer + b.activations + b.framework_reserved)).abs() < 1.0
        );
        assert!(b.optimizer > b.params, "Adam under AMP: 12 B vs 2 B per param");
    }

    #[test]
    fn sharding_divides_states_not_activations() {
        let m = bert_large(384);
        let ddp = gpu_memory_needed(&m, 4, Precision::Fp16, Strategy::ddp(), 8);
        let sh = gpu_memory_needed(&m, 4, Precision::Fp16, Strategy::sharded(), 8);
        assert!((sh.optimizer - ddp.optimizer / 8.0).abs() < 1.0);
        assert_eq!(sh.activations, ddp.activations);
        assert_eq!(sh.params, ddp.params);
    }

    #[test]
    fn zero_when_states_overflow() {
        let m = bert_large(384);
        let max = max_feasible_batch(&m, 4e9, Precision::Fp16, Strategy::ddp(), 8);
        assert_eq!(max, 0, "BERT-L states alone exceed 4 GB");
    }
}
