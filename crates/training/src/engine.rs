//! The training-loop engine: a discrete-event state machine that drives a
//! data-parallel job through the full Fig 8 pipeline on a composed system.
//!
//! The data-parallel replicas run in lockstep (identical models, identical
//! batch sizes), so the engine advances one logical iteration state
//! machine and fans out per-GPU flows (H2D copies, ring-collective edges)
//! to the fabric, which prices all contention. GPU busy time follows
//! `nvidia-smi` semantics: compute kernels *and* NCCL communication
//! kernels occupy the SMs — this is why the paper observes slightly
//! *higher* GPU utilization on Falcon configurations (Fig 10) even though
//! they are slower.

use crate::cluster::Cluster;
use crate::config::{dp_dispatch_dilation, JobConfig, Strategy};
use crate::memory::gpu_memory_needed;
use crate::pipeline::{self, PipelineState};
use crate::telemetry::{RunReport, Telemetry};
use collectives::{all_gather, plan_ring, reduce_scatter, ring_allreduce, star_broadcast, star_reduce};
use desim::{Dur, Sim, SimRng, SimTime};
use devices::roofline::KernelTime;
use dlmodels::{Benchmark, ModelDesc};
use fabric::{FabricState, FlowTag, FlowWorld, NodeId, Topology};
use std::fmt;

/// Training-job failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The per-GPU memory footprint exceeds the device capacity.
    OutOfMemory { needed: f64, capacity: f64 },
    /// The configuration has no GPUs.
    NoGpus,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::OutOfMemory { needed, capacity } => write!(
                f,
                "CUDA out of memory: needs {:.1} GB of {:.1} GB",
                needed / 1e9,
                capacity / 1e9
            ),
            TrainError::NoGpus => write!(f, "no GPUs in the composed system"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Per-iteration phase of the lockstep group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    WaitInput,
    /// Sharded strategies: waiting for the parameter all-gather.
    WaitParams,
    Broadcast,
    Fwd,
    Bwd,
    Reduce,
    Optimizer,
    Checkpoint,
    Done,
}

/// A queued collective operation (one NCCL communicator: serialized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommOp {
    /// Gradient bucket sync (allreduce under DDP, reduce-scatter under
    /// ZeRO).
    Bucket,
    /// ZeRO parameter all-gather after the optimizer step.
    ParamAllGather,
}

/// The evolving state of the job.
pub struct JobState {
    epoch: u32,
    iter_in_epoch: u64,
    pub iters_total: u64,
    iters_per_epoch: u64,
    // Precomputed per-iteration quantities.
    fwd: KernelTime,
    bwd: KernelTime,
    opt_time: Dur,
    ring: Vec<NodeId>,
    bucket_bytes: Vec<f64>,
    grad_sync_bytes: f64,
    param_bytes: f64,
    ckpt_bytes: f64,
    // Transient per-iteration state.
    phase: Phase,
    iter_start: SimTime,
    buckets_outstanding: usize,
    bwd_done: bool,
    bwd_end: SimTime,
    params_ready: bool,
    /// NCCL semantics: collectives on one communicator execute in issue
    /// order, never concurrently. Pending operations queue here.
    comm_queue: std::collections::VecDeque<CommOp>,
    comm_active: bool,
    input_wait_start: SimTime,
    finished_at: SimTime,
}

/// The simulation world of a training run.
pub struct TrainWorld {
    pub fabric: FabricState<TrainWorld>,
    pub cluster: Cluster,
    pub cfg: JobConfig,
    pub model: ModelDesc,
    pub telemetry: Telemetry,
    pub pipeline: PipelineState,
    pub job: JobState,
    pub rng: SimRng,
}

impl FlowWorld for TrainWorld {
    fn fabric(&mut self) -> &mut FabricState<TrainWorld> {
        &mut self.fabric
    }
}

/// Resolve a benchmark to its analytic model.
pub fn model_for(benchmark: Benchmark) -> ModelDesc {
    match benchmark {
        Benchmark::MobileNetV2 => dlmodels::vision::mobilenet_v2(),
        Benchmark::ResNet50 => dlmodels::vision::resnet50(),
        Benchmark::YoloV5L => dlmodels::vision::yolov5l(),
        Benchmark::BertBase => dlmodels::nlp::bert_base(384),
        Benchmark::BertLarge => dlmodels::nlp::bert_large(384),
    }
}

/// Aggregate roofline time of one forward pass of `model` at the job's
/// batch on the slowest GPU of the cluster.
fn forward_time(model: &ModelDesc, cluster: &Cluster, cfg: &JobConfig) -> KernelTime {
    let gpu = cluster
        .gpus
        .iter()
        .min_by(|a, b| {
            a.spec
                .fp16_flops
                .partial_cmp(&b.spec.fp16_flops)
                .expect("finite flops")
        })
        .expect("at least one GPU")
        .spec
        .clone();
    let dev_precision = match cfg.precision {
        dlmodels::Precision::Fp32 => devices::Precision::Fp32,
        dlmodels::Precision::Fp16 => devices::Precision::Fp16,
    };
    let mut acc = KernelTime::ZERO;
    for layer in &model.layers {
        acc.accumulate(gpu.kernel(
            layer.flops(cfg.per_gpu_batch),
            layer.mem_bytes_fwd(cfg.per_gpu_batch, cfg.precision),
            dev_precision,
            layer.kind.compute_efficiency(),
        ));
    }
    acc
}

/// Run a training job on a composed cluster. Consumes the topology (the
/// run needs exclusive fabric state); returns the distilled report.
pub fn run_job(topo: Topology, cluster: Cluster, cfg: JobConfig) -> Result<RunReport, TrainError> {
    let n = cluster.n_gpus();
    if n == 0 {
        return Err(TrainError::NoGpus);
    }
    let model = model_for(cfg.benchmark);

    // Memory feasibility (the Fig 16 batch-size gate).
    let budget = gpu_memory_needed(&model, cfg.per_gpu_batch, cfg.precision, cfg.strategy, n);
    let capacity = cluster
        .gpus
        .iter()
        .map(|g| g.spec.memory_bytes)
        .fold(f64::INFINITY, f64::min);
    if budget.total() > capacity {
        return Err(TrainError::OutOfMemory {
            needed: budget.total(),
            capacity,
        });
    }

    // Iterations per epoch: the dataset is sharded across the replicas.
    let samples_per_gpu = model.dataset.samples / n as u64;
    let full_iters_per_epoch = (samples_per_gpu / cfg.per_gpu_batch).max(1);
    let mut iters_per_epoch = full_iters_per_epoch;
    if let Some(cap) = cfg.max_iters_per_epoch {
        iters_per_epoch = iters_per_epoch.min(cap);
    }
    // Faithful mini-epoch scaling: epoch-scoped costs (checkpoint bytes,
    // cold dataset reads) shrink with the iteration cap so that *relative*
    // quantities match a full-length run at any scale.
    let epoch_scale = iters_per_epoch as f64 / full_iters_per_epoch as f64;

    // Precompute kernel times.
    let mut fwd = forward_time(&model, &cluster, &cfg);
    let mut bwd = fwd.scaled(2.0);
    if matches!(cfg.strategy, Strategy::Dp) {
        let d = dp_dispatch_dilation(n);
        fwd = fwd.scaled(d);
        bwd = bwd.scaled(d);
    }
    // Optimizer: Adam reads/writes params, grads and moments (~24 B per
    // parameter at AMP), sharded n-ways under ZeRO.
    let gpu0 = &cluster.gpus[0].spec;
    let opt_bytes = model.param_count() as f64 * 24.0;
    let opt_share = match cfg.strategy {
        Strategy::Sharded { .. } => opt_bytes / n as f64,
        _ => opt_bytes,
    };
    let opt_time =
        Dur::from_secs_f64(opt_share / gpu0.effective_hbm()) + Dur::from_micros(500);

    // Communication plan.
    let grad_bytes = model.gradient_bytes(cfg.precision);
    let (bucket_bytes, grad_sync_bytes) = match cfg.strategy {
        Strategy::Ddp { bucket_bytes } | Strategy::Sharded { bucket_bytes } => {
            let k = (grad_bytes / bucket_bytes).ceil().max(1.0) as usize;
            let per = grad_bytes / k as f64;
            (vec![per; k], grad_bytes)
        }
        Strategy::Dp => (Vec::new(), grad_bytes),
    };

    let mut fabric = FabricState::new(topo);
    let ring = plan_ring(&mut fabric.topo, &cluster.gpu_cores());

    let dataset_fits = cluster
        .dram
        .fits_in_page_cache(model.dataset.disk_bytes(), 60e9);
    let reads_per_sample = if cfg.benchmark == Benchmark::YoloV5L {
        4.0 // mosaic augmentation touches four images per sample
    } else {
        1.0
    };
    // When the epoch is capped for a scaled simulation, the effective
    // dataset shrinks with it (a faithful mini-epoch: the first epoch is
    // cold, later epochs are page-cache warm, exactly as at full scale).
    let effective_dataset_bytes = model.dataset.disk_bytes().min(
        iters_per_epoch as f64 * n as f64 * cfg.per_gpu_batch as f64
            * model.dataset.disk_bytes_per_sample,
    );
    let pipeline = PipelineState::new(
        n,
        iters_per_epoch,
        effective_dataset_bytes,
        dataset_fits,
        reads_per_sample,
        40e9,
    );

    let mut telemetry = Telemetry::new(n, capacity);
    telemetry.gpu_mem_used = budget.total();

    let job = JobState {
        epoch: 0,
        iter_in_epoch: 0,
        iters_total: 0,
        iters_per_epoch,
        fwd,
        bwd,
        opt_time,
        ring,
        bucket_bytes,
        grad_sync_bytes,
        param_bytes: model.param_bytes(cfg.precision),
        ckpt_bytes: model.checkpoint_bytes() * epoch_scale,
        phase: Phase::WaitInput,
        iter_start: SimTime::ZERO,
        buckets_outstanding: 0,
        bwd_done: false,
        bwd_end: SimTime::ZERO,
        params_ready: true,
        comm_queue: std::collections::VecDeque::new(),
        comm_active: false,
        input_wait_start: SimTime::ZERO,
        finished_at: SimTime::ZERO,
    };

    let rng = SimRng::seed_from_u64(cfg.seed);
    let mut world = TrainWorld {
        fabric,
        cluster,
        cfg,
        model,
        telemetry,
        pipeline,
        job,
        rng,
    };

    let mut sim: Sim<TrainWorld> = Sim::new();
    pipeline::start_epoch(&mut world, &mut sim);
    begin_iteration(&mut world, &mut sim);
    // Generous budget: a runaway loop is a bug, not a workload.
    let total_iters = world.job.iters_per_epoch * world.cfg.epochs as u64;
    let drained = sim.run_with_budget(&mut world, 2_000 * total_iters.max(1) + 100_000);
    assert!(drained, "simulation exceeded its event budget");
    assert_eq!(world.job.phase, Phase::Done, "job did not finish");

    Ok(build_report(&world, &mut sim))
}

// ---- state machine ---------------------------------------------------------

fn begin_iteration(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    w.job.iter_start = sim.now();
    w.job.phase = Phase::WaitInput;
    w.job.input_wait_start = sim.now();
    try_start_after_input(w, sim);
}

/// Pipeline notification: a batch was enqueued.
pub fn on_batch_ready(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    if w.job.phase == Phase::WaitInput {
        try_start_after_input(w, sim);
    }
}

fn try_start_after_input(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    if !w.pipeline.all_ready() {
        return;
    }
    w.pipeline.consume_all();
    let stall = sim.now().since(w.job.input_wait_start);
    w.telemetry.input_stall += stall;
    w.telemetry
        .spans
        .record(0, "data-wait", w.job.input_wait_start, sim.now());
    // Refill the queues we just drained. (H2D already happened inside the
    // pipeline's prefetch — batches are device-resident when consumed.)
    for g in 0..w.pipeline.queues.len() {
        pipeline::maybe_produce(w, sim, g);
    }
    match w.cfg.strategy {
        Strategy::Dp => start_dp_broadcast(w, sim),
        _ => {
            if w.job.params_ready {
                start_fwd(w, sim);
            } else {
                // Sharded: the parameter all-gather from the previous step
                // has not landed yet; the GPUs wait (NCCL kernels hold the
                // SMs, so this still reads as "busy" — see module docs).
                w.job.phase = Phase::WaitParams;
                w.job.bwd_end = sim.now(); // reuse as wait start
            }
        }
    }
}

fn start_dp_broadcast(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    w.job.phase = Phase::Broadcast;
    let start = sim.now();
    let master = w.job.ring[0];
    let peers: Vec<NodeId> = w.job.ring[1..].to_vec();
    let bytes = w.job.param_bytes;
    star_broadcast(
        w,
        sim,
        master,
        &peers,
        bytes,
        FlowTag::COLLECTIVE,
        Box::new(move |w: &mut TrainWorld, sim| {
            // The master GPU drives the copies.
            w.telemetry.gpu_busy[0].record(start, sim.now());
            w.telemetry.exposed_comm += sim.now().since(start);
            w.telemetry.spans.record(0, "exposed-comm", start, sim.now());
            start_fwd(w, sim);
        }),
    );
}

fn start_fwd(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    w.job.phase = Phase::Fwd;
    let dur = w.job.fwd.total * w.rng.jitter(w.cfg.jitter_frac);
    w.telemetry.spans.record(0, "forward", sim.now(), sim.now() + dur);
    w.telemetry.all_gpus_busy(sim.now(), sim.now() + dur);
    w.telemetry.kernel_time_sum += w.job.fwd.total;
    w.telemetry.mem_time_sum += w.job.fwd.mem_time;
    sim.schedule_in(dur, start_bwd);
}

fn start_bwd(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    w.job.phase = Phase::Bwd;
    let dur = w.job.bwd.total * w.rng.jitter(w.cfg.jitter_frac);
    w.telemetry.spans.record(0, "backward", sim.now(), sim.now() + dur);
    w.telemetry.all_gpus_busy(sim.now(), sim.now() + dur);
    w.telemetry.kernel_time_sum += w.job.bwd.total;
    w.telemetry.mem_time_sum += w.job.bwd.mem_time;
    w.job.bwd_done = false;
    w.job.bwd_end = sim.now() + dur;

    match w.cfg.strategy {
        Strategy::Dp => {
            // No overlap: gradients reduce to the master after backward.
            sim.schedule_in(dur, |w: &mut TrainWorld, sim| {
                w.job.bwd_done = true;
                start_dp_reduce(w, sim);
            });
        }
        Strategy::Ddp { .. } | Strategy::Sharded { .. } => {
            // Bucketed overlap: bucket i becomes ready as backward produces
            // its gradients; its collective launches immediately.
            let k = w.job.bucket_bytes.len();
            w.job.buckets_outstanding = k;
            for i in 0..k {
                let at = dur * ((i + 1) as f64 / k as f64);
                sim.schedule_in(at, move |w: &mut TrainWorld, sim| {
                    enqueue_comm(w, sim, CommOp::Bucket)
                });
            }
            sim.schedule_in(dur, |w: &mut TrainWorld, sim| {
                w.job.bwd_done = true;
                check_sync_done(w, sim);
            });
        }
    }
}

/// Enqueue a collective on the (single) NCCL communicator and start it if
/// the communicator is idle. NCCL serializes operations per communicator,
/// which is what makes total communication time the *sum* of bucket times
/// rather than their max — the behavior behind the paper's BERT-large
/// slowdown on Falcon-attached GPUs.
fn enqueue_comm(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>, op: CommOp) {
    w.job.comm_queue.push_back(op);
    dispatch_comm(w, sim);
}

fn dispatch_comm(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    if w.job.comm_active {
        return;
    }
    let Some(op) = w.job.comm_queue.pop_front() else {
        return;
    };
    w.job.comm_active = true;
    let ring = w.job.ring.clone();
    match op {
        CommOp::Bucket => {
            let bytes = w.job.bucket_bytes[0];
            let done = Box::new(|w: &mut TrainWorld, sim: &mut Sim<TrainWorld>| {
                w.job.comm_active = false;
                w.job.buckets_outstanding -= 1;
                dispatch_comm(w, sim);
                check_sync_done(w, sim);
            });
            match w.cfg.strategy {
                Strategy::Sharded { .. } => {
                    reduce_scatter(w, sim, &ring, bytes, FlowTag::COLLECTIVE, done)
                }
                _ => ring_allreduce(w, sim, &ring, bytes, FlowTag::COLLECTIVE, done),
            }
        }
        CommOp::ParamAllGather => {
            let bytes = w.job.param_bytes;
            all_gather(
                w,
                sim,
                &ring,
                bytes,
                FlowTag::COLLECTIVE,
                Box::new(|w: &mut TrainWorld, sim| {
                    w.job.comm_active = false;
                    dispatch_comm(w, sim);
                    on_params_gathered(w, sim);
                }),
            );
        }
    }
}

fn on_params_gathered(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    w.job.params_ready = true;
    if w.job.phase == Phase::WaitParams {
        let waited = sim.now().since(w.job.bwd_end);
        w.telemetry.exposed_comm += waited;
        w.telemetry.all_gpus_busy(w.job.bwd_end, sim.now());
        start_fwd(w, sim);
    }
}

fn check_sync_done(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    if !w.job.bwd_done || w.job.buckets_outstanding > 0 {
        return;
    }
    // Communication that outlived backward is exposed; the NCCL kernels
    // keep the SMs occupied during it.
    if sim.now() > w.job.bwd_end {
        let exposed = sim.now().since(w.job.bwd_end);
        w.telemetry.exposed_comm += exposed;
        w.telemetry
            .spans
            .record(0, "exposed-comm", w.job.bwd_end, sim.now());
        w.telemetry.all_gpus_busy(w.job.bwd_end, sim.now());
    }
    start_optimizer(w, sim);
}

fn start_dp_reduce(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    w.job.phase = Phase::Reduce;
    let start = sim.now();
    let master = w.job.ring[0];
    let peers: Vec<NodeId> = w.job.ring[1..].to_vec();
    let bytes = w.job.grad_sync_bytes;
    star_reduce(
        w,
        sim,
        master,
        &peers,
        bytes,
        FlowTag::COLLECTIVE,
        Box::new(move |w: &mut TrainWorld, sim| {
            w.telemetry.gpu_busy[0].record(start, sim.now());
            w.telemetry.exposed_comm += sim.now().since(start);
            w.telemetry.spans.record(0, "exposed-comm", start, sim.now());
            start_optimizer(w, sim);
        }),
    );
}

fn start_optimizer(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    w.job.phase = Phase::Optimizer;
    let dur = w.job.opt_time;
    w.telemetry.spans.record(0, "optimizer", sim.now(), sim.now() + dur);
    match w.cfg.strategy {
        // DP: the optimizer runs only on the master replica.
        Strategy::Dp => w.telemetry.gpu_busy[0].record(sim.now(), sim.now() + dur),
        _ => w.telemetry.all_gpus_busy(sim.now(), sim.now() + dur),
    }
    sim.schedule_in(dur, after_optimizer);
}

fn after_optimizer(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    // ZeRO: the updated parameter shards are all-gathered; the next
    // iteration's forward waits on it (usually hidden under data loading
    // and H2D).
    if matches!(w.cfg.strategy, Strategy::Sharded { .. }) {
        w.job.params_ready = false;
        enqueue_comm(w, sim, CommOp::ParamAllGather);
    }

    // Iteration bookkeeping.
    w.telemetry
        .iter_times
        .record(sim.now().since(w.job.iter_start).as_secs_f64());
    w.telemetry
        .samples_trained
        .add((w.cfg.per_gpu_batch * w.cluster.n_gpus() as u64) as f64);
    w.job.iters_total += 1;
    w.job.iter_in_epoch += 1;

    if w.job.iter_in_epoch >= w.job.iters_per_epoch {
        end_epoch(w, sim);
    } else {
        begin_iteration(w, sim);
    }
}

fn end_epoch(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    w.telemetry.epoch_marks.push(sim.now());
    w.job.iter_in_epoch = 0;
    w.job.epoch += 1;

    if w.cfg.checkpoint_each_epoch {
        checkpoint_then(w, sim, next_epoch_or_finish);
    } else {
        next_epoch_or_finish(w, sim);
    }
}

/// Checkpoint: rank 0 copies the model + optimizer state to host memory,
/// then the host writes it to storage. The GPUs sit idle — the periodic
/// utilization dips of the paper's Fig 9.
fn checkpoint_then(
    w: &mut TrainWorld,
    sim: &mut Sim<TrainWorld>,
    cont: fn(&mut TrainWorld, &mut Sim<TrainWorld>),
) {
    w.job.phase = Phase::Checkpoint;
    let src = w.cluster.gpus[0].core;
    let dst = w.cluster.host_mem;
    let bytes = w.job.ckpt_bytes;
    let write_time = w.cluster.storage.write_time(bytes);
    let started = sim.now();
    w.fabric.start_flow(
        sim,
        src,
        dst,
        bytes,
        FlowTag::CHECKPOINT,
        Box::new(move |w: &mut TrainWorld, sim| {
            w.telemetry
                .spans
                .record(0, "checkpoint", started, sim.now() + write_time);
            sim.schedule_in(write_time, cont);
        }),
    );
}

fn next_epoch_or_finish(w: &mut TrainWorld, sim: &mut Sim<TrainWorld>) {
    if w.job.epoch >= w.cfg.epochs {
        w.job.phase = Phase::Done;
        w.job.finished_at = sim.now();
    } else {
        pipeline::start_epoch(w, sim);
        begin_iteration(w, sim);
    }
}

// ---- reporting --------------------------------------------------------------

fn build_report(w: &TrainWorld, sim: &mut Sim<TrainWorld>) -> RunReport {
    let end = w.job.finished_at;
    let total = end.since(SimTime::ZERO);
    let n = w.cluster.n_gpus();
    let trace_bucket = Dur::from_nanos((total.as_nanos() / 60).max(1));

    let gpu_util = (0..n)
        .map(|i| w.telemetry.gpu_busy[i].utilization(SimTime::ZERO, end))
        .sum::<f64>()
        / n as f64;
    let gpu_util_trace = w.telemetry.gpu_busy[0].trace(SimTime::ZERO, end, trace_bucket);

    let monitored = w.cluster.monitored_pcie_links(&w.fabric.topo);
    // Fig 12's quantity is the *steady-state* transfer rate while training
    // iterations run, so normalize total monitored bytes by accumulated
    // iteration time rather than by wall clock (which includes
    // checkpoint/epoch pauses).
    let monitored_bytes: f64 = monitored
        .iter()
        .map(|dl| w.fabric.ports.bytes_within(*dl, SimTime::ZERO, end))
        .sum();
    let active_secs = w.telemetry.iter_times.mean() * w.job.iters_total as f64;
    let falcon_pcie_rate = if active_secs > 0.0 {
        monitored_bytes / active_secs
    } else {
        0.0
    };
    let falcon_pcie_trace =
        w.fabric
            .ports
            .aggregate_trace(&monitored, SimTime::ZERO, end, trace_bucket);

    let kernel_total = w.telemetry.kernel_time_sum + w.telemetry.exposed_comm;
    let gpu_mem_access_share = if kernel_total.is_zero() {
        0.0
    } else {
        w.telemetry.mem_time_sum.as_secs_f64() / kernel_total.as_secs_f64()
    };

    let phase_totals = w
        .telemetry
        .spans
        .totals_by_label()
        .into_iter()
        .map(|(k, v)| (k, v.as_secs_f64()))
        .collect();
    let iter_times = w.telemetry.iter_times.clone();
    let _ = sim; // report is pure; sim retained for signature symmetry
    RunReport {
        label: w.cluster.label.clone(),
        benchmark: w.model.name.clone(),
        total_time: total,
        iterations: w.job.iters_total,
        mean_iter: Dur::from_secs_f64(iter_times.mean()),
        throughput: w.telemetry.samples_trained.total() / total.as_secs_f64().max(1e-9),
        gpu_util,
        gpu_util_trace,
        gpu_mem_util: w.telemetry.gpu_mem_used / w.telemetry.gpu_mem_capacity,
        gpu_mem_access_share,
        cpu_util: w.telemetry.cpu_cores_busy.mean(end) / w.cluster.cpu.cores as f64,
        host_mem_util: w.telemetry.host_mem_used.mean(end) / w.cluster.dram.capacity_bytes,
        falcon_pcie_rate,
        falcon_pcie_trace,
        input_stall_share: w.telemetry.input_stall.as_secs_f64() / total.as_secs_f64().max(1e-9),
        exposed_comm_share: w.telemetry.exposed_comm.as_secs_f64()
            / total.as_secs_f64().max(1e-9),
        phase_totals,
    }
}
