//! Run telemetry: everything the paper's figures plot.

use desim::json::{FromJson, JsonError, ToJson, Value};
use desim::stats::{BusyTracker, Counter, Histogram, Summary, TimeWeightedGauge};
use desim::trace::SpanRecorder;
use desim::{Dur, SimTime};

/// Live collectors during a run.
#[derive(Debug)]
pub struct Telemetry {
    /// Per-GPU compute busy intervals (Fig 9/10 GPU utilization).
    pub gpu_busy: Vec<BusyTracker>,
    /// Share of GPU kernel time bounded by HBM (Fig 10 "% of time
    /// accessing GPU memory"), aggregated from roofline components.
    pub mem_time_sum: Dur,
    pub kernel_time_sum: Dur,
    /// CPU cores in use by dataloader workers (Fig 13).
    pub cpu_cores_busy: TimeWeightedGauge,
    /// Host memory in use (Fig 14).
    pub host_mem_used: TimeWeightedGauge,
    /// Per-GPU memory in use, bytes (static per run; Fig 10 middle panel).
    pub gpu_mem_used: f64,
    pub gpu_mem_capacity: f64,
    pub iter_times: Histogram,
    pub epoch_marks: Vec<SimTime>,
    pub samples_trained: Counter,
    /// Time spent stalled waiting for input batches (pipeline-bound).
    pub input_stall: Dur,
    /// Time communication was exposed (not overlapped with compute).
    pub exposed_comm: Dur,
    /// Phase spans of the lockstep group (track 0): data wait, forward,
    /// backward, exposed comm, optimizer, checkpoint.
    pub spans: SpanRecorder,
}

impl Telemetry {
    pub fn new(n_gpus: usize, gpu_mem_capacity: f64) -> Telemetry {
        Telemetry {
            gpu_busy: (0..n_gpus).map(|_| BusyTracker::new()).collect(),
            mem_time_sum: Dur::ZERO,
            kernel_time_sum: Dur::ZERO,
            cpu_cores_busy: TimeWeightedGauge::new(SimTime::ZERO, 0.0),
            host_mem_used: TimeWeightedGauge::new(SimTime::ZERO, 0.0),
            gpu_mem_used: 0.0,
            gpu_mem_capacity,
            iter_times: Histogram::new(),
            epoch_marks: Vec::new(),
            samples_trained: Counter::new(),
            input_stall: Dur::ZERO,
            exposed_comm: Dur::ZERO,
            spans: SpanRecorder::new(),
        }
    }

    /// Mark all GPUs compute-busy on `[from, to)`.
    pub fn all_gpus_busy(&mut self, from: SimTime, to: SimTime) {
        for b in &mut self.gpu_busy {
            b.record(from, to);
        }
    }
}

/// The distilled result of one training run — the row/series material for
/// every figure of the paper.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub label: String,
    pub benchmark: String,
    /// Wall-clock training time.
    pub total_time: Dur,
    pub iterations: u64,
    pub mean_iter: Dur,
    /// Samples per second of training throughput.
    pub throughput: f64,
    /// Mean GPU utilization in [0, 1] (Fig 10 top / Fig 13 companion).
    pub gpu_util: f64,
    /// Bucketed GPU-utilization trace (Fig 9).
    pub gpu_util_trace: Vec<f64>,
    /// GPU memory occupancy fraction (Fig 10 middle).
    pub gpu_mem_util: f64,
    /// Fraction of kernel time bound by HBM (Fig 10 bottom).
    pub gpu_mem_access_share: f64,
    /// Mean CPU utilization in [0, 1] (Fig 13).
    pub cpu_util: f64,
    /// Mean host-memory utilization in [0, 1] (Fig 14).
    pub host_mem_util: f64,
    /// Aggregate Falcon PCIe traffic, bytes/s (Fig 12); 0 when no
    /// falcon-attached GPU exists in the configuration.
    pub falcon_pcie_rate: f64,
    /// Bucketed Falcon PCIe rate trace.
    pub falcon_pcie_trace: Vec<f64>,
    /// Fraction of run time stalled on the input pipeline.
    pub input_stall_share: f64,
    /// Fraction of run time in exposed (unoverlapped) communication.
    pub exposed_comm_share: f64,
    /// Wall-clock per phase label (the Fig 8 data-path breakdown):
    /// forward, backward, exposed-comm, optimizer, checkpoint, data-wait.
    pub phase_totals: Vec<(String, f64)>,
}

impl RunReport {
    /// Percent change of training time versus a baseline run (the Fig 11 /
    /// Fig 15 quantity): positive = slower than baseline.
    pub fn pct_change_vs(&self, baseline: &RunReport) -> f64 {
        (self.total_time.as_secs_f64() / baseline.total_time.as_secs_f64() - 1.0) * 100.0
    }

    /// Speedup of `self` relative to `other` (>1 means self is faster).
    pub fn speedup_vs(&self, other: &RunReport) -> f64 {
        other.total_time.as_secs_f64() / self.total_time.as_secs_f64()
    }

    pub fn gpu_util_summary(&self) -> Summary {
        Summary::of(&self.gpu_util_trace)
    }

    /// Compact JSON form (downstream tooling, golden files).
    pub fn to_json_string(&self) -> String {
        self.to_json().emit()
    }

    /// Parse a report emitted by [`RunReport::to_json_string`].
    pub fn from_json_str(s: &str) -> Result<RunReport, JsonError> {
        RunReport::from_json(&Value::parse(s)?)
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("label", Value::str(&*self.label)),
            ("benchmark", Value::str(&*self.benchmark)),
            ("total_time", self.total_time.to_json()),
            ("iterations", Value::from_u64(self.iterations)),
            ("mean_iter", self.mean_iter.to_json()),
            ("throughput", Value::Num(self.throughput)),
            ("gpu_util", Value::Num(self.gpu_util)),
            ("gpu_util_trace", self.gpu_util_trace.to_json()),
            ("gpu_mem_util", Value::Num(self.gpu_mem_util)),
            ("gpu_mem_access_share", Value::Num(self.gpu_mem_access_share)),
            ("cpu_util", Value::Num(self.cpu_util)),
            ("host_mem_util", Value::Num(self.host_mem_util)),
            ("falcon_pcie_rate", Value::Num(self.falcon_pcie_rate)),
            ("falcon_pcie_trace", self.falcon_pcie_trace.to_json()),
            ("input_stall_share", Value::Num(self.input_stall_share)),
            ("exposed_comm_share", Value::Num(self.exposed_comm_share)),
            ("phase_totals", self.phase_totals.to_json()),
        ])
    }
}

impl FromJson for RunReport {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(RunReport {
            label: String::from_json(v.get("label")?)?,
            benchmark: String::from_json(v.get("benchmark")?)?,
            total_time: Dur::from_json(v.get("total_time")?)?,
            iterations: v.get("iterations")?.as_u64()?,
            mean_iter: Dur::from_json(v.get("mean_iter")?)?,
            throughput: v.get("throughput")?.as_f64()?,
            gpu_util: v.get("gpu_util")?.as_f64()?,
            gpu_util_trace: FromJson::from_json(v.get("gpu_util_trace")?)?,
            gpu_mem_util: v.get("gpu_mem_util")?.as_f64()?,
            gpu_mem_access_share: v.get("gpu_mem_access_share")?.as_f64()?,
            cpu_util: v.get("cpu_util")?.as_f64()?,
            host_mem_util: v.get("host_mem_util")?.as_f64()?,
            falcon_pcie_rate: v.get("falcon_pcie_rate")?.as_f64()?,
            falcon_pcie_trace: FromJson::from_json(v.get("falcon_pcie_trace")?)?,
            input_stall_share: v.get("input_stall_share")?.as_f64()?,
            exposed_comm_share: v.get("exposed_comm_share")?.as_f64()?,
            phase_totals: FromJson::from_json(v.get("phase_totals")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(secs: f64) -> RunReport {
        RunReport {
            label: "x".into(),
            benchmark: "b".into(),
            total_time: Dur::from_secs_f64(secs),
            iterations: 10,
            mean_iter: Dur::from_secs_f64(secs / 10.0),
            throughput: 1.0,
            gpu_util: 0.9,
            gpu_util_trace: vec![0.8, 1.0],
            gpu_mem_util: 0.5,
            gpu_mem_access_share: 0.3,
            cpu_util: 0.2,
            host_mem_util: 0.1,
            falcon_pcie_rate: 0.0,
            falcon_pcie_trace: vec![],
            input_stall_share: 0.0,
            exposed_comm_share: 0.0,
            phase_totals: vec![],
        }
    }

    #[test]
    fn pct_change_and_speedup() {
        let base = report(100.0);
        let slow = report(200.0);
        assert!((slow.pct_change_vs(&base) - 100.0).abs() < 1e-9);
        assert!((base.speedup_vs(&slow) - 2.0).abs() < 1e-9);
        assert!((slow.speedup_vs(&base) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn telemetry_gpu_marks() {
        let mut t = Telemetry::new(2, 16e9);
        t.all_gpus_busy(SimTime::ZERO, SimTime::from_secs(1));
        for b in &t.gpu_busy {
            assert!((b.utilization(SimTime::ZERO, SimTime::from_secs(1)) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn util_summary() {
        let r = report(10.0);
        let s = r.gpu_util_summary();
        assert_eq!(s.count, 2);
        assert!((s.mean - 0.9).abs() < 1e-9);
    }
}
