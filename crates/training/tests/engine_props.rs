//! Property tests on memory accounting and the training engine.

use dlmodels::{Benchmark, Precision};
use proptest::prelude::*;
use training::{gpu_memory_needed, max_feasible_batch};

fn any_strategy() -> impl Strategy<Value = training::Strategy> {
    prop_oneof![
        Just(training::Strategy::ddp()),
        Just(training::Strategy::Dp),
        Just(training::Strategy::sharded()),
    ]
}

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    proptest::sample::select(Benchmark::all().to_vec())
}

fn any_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![Just(Precision::Fp16), Just(Precision::Fp32)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Memory is strictly monotone in batch size.
    #[test]
    fn memory_monotone_in_batch(b in any_benchmark(), s in any_strategy(),
                                p in any_precision(), batch in 1u64..32) {
        let m = training::engine::model_for(b);
        let small = gpu_memory_needed(&m, batch, p, s, 8).total();
        let large = gpu_memory_needed(&m, batch + 1, p, s, 8).total();
        prop_assert!(large > small);
    }

    /// `max_feasible_batch` is exact: the maximum fits, one more does not.
    #[test]
    fn max_feasible_is_tight(b in any_benchmark(), s in any_strategy(),
                             p in any_precision(), cap_gb in 8.0f64..40.0) {
        let m = training::engine::model_for(b);
        let cap = cap_gb * 1e9;
        let max = max_feasible_batch(&m, cap, p, s, 8);
        if max > 0 {
            prop_assert!(gpu_memory_needed(&m, max, p, s, 8).total() <= cap);
        }
        prop_assert!(gpu_memory_needed(&m, max + 1, p, s, 8).total() > cap);
    }

    /// Sharding never needs more memory than plain DDP at equal batch.
    #[test]
    fn sharding_never_hurts_memory(b in any_benchmark(), p in any_precision(),
                                   batch in 1u64..16, n in 2usize..16) {
        let m = training::engine::model_for(b);
        let ddp = gpu_memory_needed(&m, batch, p, training::Strategy::ddp(), n).total();
        let sh = gpu_memory_needed(&m, batch, p, training::Strategy::sharded(), n).total();
        prop_assert!(sh <= ddp);
    }

    /// More replicas shard harder: sharded memory is nonincreasing in n.
    #[test]
    fn sharded_memory_shrinks_with_replicas(b in any_benchmark(), batch in 1u64..8,
                                            n in 2usize..15) {
        let m = training::engine::model_for(b);
        let small = gpu_memory_needed(&m, batch, Precision::Fp16, training::Strategy::sharded(), n).total();
        let large = gpu_memory_needed(&m, batch, Precision::Fp16, training::Strategy::sharded(), n + 1).total();
        prop_assert!(large <= small);
    }
}
