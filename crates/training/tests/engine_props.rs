//! Property tests on memory accounting and the training engine.
//!
//! Invariants covered (testkit, 64 cases each):
//! * GPU memory need is strictly monotone in batch size;
//! * `max_feasible_batch` is exact (max fits, max+1 does not);
//! * sharding never needs more memory than DDP at equal batch;
//! * sharded memory is nonincreasing in replica count.

use dlmodels::{Benchmark, Precision};
use testkit::{just, one_of, prop_assert, property, select, f64_in, u64_in, usize_in, Gen};
use training::{gpu_memory_needed, max_feasible_batch};

fn any_strategy() -> Gen<training::Strategy> {
    one_of(vec![
        just(training::Strategy::ddp()),
        just(training::Strategy::Dp),
        just(training::Strategy::sharded()),
    ])
}

fn any_benchmark() -> Gen<Benchmark> {
    select(Benchmark::all().to_vec())
}

fn any_precision() -> Gen<Precision> {
    one_of(vec![just(Precision::Fp16), just(Precision::Fp32)])
}

property! {
    /// Memory is strictly monotone in batch size.
    #[cases(64)]
    fn memory_monotone_in_batch(b in any_benchmark(), s in any_strategy(),
                                p in any_precision(), batch in u64_in(1..32)) {
        let m = training::engine::model_for(b);
        let small = gpu_memory_needed(&m, batch, p, s, 8).total();
        let large = gpu_memory_needed(&m, batch + 1, p, s, 8).total();
        prop_assert!(large > small);
    }

    /// `max_feasible_batch` is exact: the maximum fits, one more does not.
    #[cases(64)]
    fn max_feasible_is_tight(b in any_benchmark(), s in any_strategy(),
                             p in any_precision(), cap_gb in f64_in(8.0, 40.0)) {
        let m = training::engine::model_for(b);
        let cap = cap_gb * 1e9;
        let max = max_feasible_batch(&m, cap, p, s, 8);
        if max > 0 {
            prop_assert!(gpu_memory_needed(&m, max, p, s, 8).total() <= cap);
        }
        prop_assert!(gpu_memory_needed(&m, max + 1, p, s, 8).total() > cap);
    }

    /// Sharding never needs more memory than plain DDP at equal batch.
    #[cases(64)]
    fn sharding_never_hurts_memory(b in any_benchmark(), p in any_precision(),
                                   batch in u64_in(1..16), n in usize_in(2..16)) {
        let m = training::engine::model_for(b);
        let ddp = gpu_memory_needed(&m, batch, p, training::Strategy::ddp(), n).total();
        let sh = gpu_memory_needed(&m, batch, p, training::Strategy::sharded(), n).total();
        prop_assert!(sh <= ddp);
    }

    /// More replicas shard harder: sharded memory is nonincreasing in n.
    #[cases(64)]
    fn sharded_memory_shrinks_with_replicas(b in any_benchmark(), batch in u64_in(1..8),
                                            n in usize_in(2..15)) {
        let m = training::engine::model_for(b);
        let small = gpu_memory_needed(&m, batch, Precision::Fp16, training::Strategy::sharded(), n).total();
        let large = gpu_memory_needed(&m, batch, Precision::Fp16, training::Strategy::sharded(), n + 1).total();
        prop_assert!(large <= small);
    }
}
