//! The co-design experiment the paper's §VI proposes: before buying or
//! building, pool *candidate accelerators* behind the Falcon and measure
//! the workloads on them. Here: how would the chassis's P100s serve the
//! five benchmarks compared to its V100s, at 4-GPU and 8-GPU pool sizes?
//!
//! ```text
//! cargo run --release --example accelerator_exploration
//! ```

use composable_core::report::table;
use composable_core::system::build_custom_falcon_host;
use devices::GpuSpec;
use dlmodels::Benchmark;
use training::{run_job, JobConfig};

fn main() {
    let accelerators = [GpuSpec::v100_pcie_16gb(), GpuSpec::p100_pcie_16gb()];
    let pool_sizes = [4usize, 8];

    let mut rows = Vec::new();
    for b in Benchmark::all() {
        for gpu in &accelerators {
            for &n in &pool_sizes {
                let composed = build_custom_falcon_host(gpu, n);
                let mut cfg = JobConfig::paper_scaled(b, n, 15);
                cfg.checkpoint_each_epoch = false;
                match run_job(composed.topology, composed.cluster, cfg) {
                    Ok(r) => rows.push(vec![
                        b.label().to_string(),
                        gpu.name.clone(),
                        n.to_string(),
                        format!("{}", r.mean_iter),
                        format!("{:.0} samples/s", r.throughput),
                        format!("{:.0}%", r.exposed_comm_share * 100.0),
                    ]),
                    Err(e) => rows.push(vec![
                        b.label().to_string(),
                        gpu.name.clone(),
                        n.to_string(),
                        format!("{e}"),
                        "-".to_string(),
                        "-".to_string(),
                    ]),
                }
            }
        }
    }
    println!(
        "{}",
        table(
            &["benchmark", "accelerator", "pool", "iter", "throughput", "exposed comm"],
            &rows
        )
    );
    println!("\nReading: the P100 pool (no tensor cores) loses 4-6x on the");
    println!("compute-bound benchmarks but only ~2x on the communication-bound");
    println!("BERT-large — exactly the kind of topology/accelerator trade-off");
    println!("the composable test bed lets a design team measure before committing.");
}
