//! Cluster scheduling on the composable test bed: two tenants share the
//! 16 pooled V100s of one Falcon 4016 (2 drawers x 8 slots, advanced
//! mode), and a trace of training jobs is replayed under four placement
//! policies. Every placement is an MCS-audited grant/attach; completions
//! detach; big elastic jobs shrink 8→4 GPUs under pressure.
//!
//! ```text
//! cargo run --release --example cluster_schedule
//! ```

use scheduler::{
    all_policies, compare_policies, comparison_table, policy_by_name, trace, ClusterSim,
    SchedulerConfig, Trace,
};

fn main() {
    // A seeded trace is a pure function of (n_jobs, seed): Poisson
    // arrivals, heavy-tailed GPU demand and job length over the paper's
    // five benchmarks, two tenants interleaved.
    let t = trace::seeded_two_tenant(20, 0xC10D);
    println!("trace {}: {} jobs from {} tenants", t.name, t.jobs.len(), t.n_tenants());
    println!("first arrivals:");
    for j in t.jobs.iter().take(5) {
        println!(
            "  [{:>7}] job{:<2} {} {:12} {}x GPU, {} iters{}",
            j.arrival,
            j.id,
            j.tenant,
            j.benchmark.label(),
            j.gpus,
            j.iters,
            if j.shrinkable() { " (elastic)" } else { "" },
        );
    }

    // Traces round-trip through JSON, so real workload logs can be
    // imported the same way.
    let back = Trace::from_json_str(&t.to_json_string()).unwrap();
    assert_eq!(back, t);

    // One policy in detail: per-job lifecycle under frag-aware placement
    // (keeps every job inside a single drawer — zero cross-drawer splits).
    let report = ClusterSim::new(
        t.clone(),
        policy_by_name("frag-aware").unwrap(),
        SchedulerConfig::default(),
    )
    .unwrap()
    .run()
    .unwrap();
    println!("\nfrag-aware replay, per-job outcomes:");
    for o in &report.jobs {
        println!(
            "  job{:<2} {} {:12} {}->{} GPUs  queued {:>8}  ran {:>8}{}{}",
            o.id,
            o.tenant,
            o.benchmark,
            o.gpus,
            o.final_gpus,
            o.queue_delay(),
            o.jct(),
            if o.spanned { "  [split]" } else { "" },
            if o.shrunk { "  [shrunk]" } else { "" },
        );
    }
    println!(
        "\nmakespan {}  GPU util {:.0}%  fairness {:.3}  audit entries {}",
        report.makespan,
        report.gpu_util * 100.0,
        report.fairness,
        report.audit_entries
    );

    // All four policies on the same trace: the comparison the paper's
    // composability story motivates — topology-respecting placement wins.
    let reports = compare_policies(&t, all_policies(), &SchedulerConfig::default()).unwrap();
    println!("\n{}", comparison_table(&reports));
}
