//! Quickstart: compose a system, train a benchmark, read the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Composes the paper's `localGPUs` and `falconGPUs` hosts (Table III),
//! runs a scaled ResNet-50 ImageNet job on each, and prints the paper's
//! key metrics side by side.

use composable_core::report::{series_line, table, RUN_HEADERS};
use composable_core::runner::{run, ExperimentOpts};
use composable_core::HostConfig;
use dlmodels::Benchmark;

fn main() {
    // 30 iterations per epoch keeps this instant; relative behavior is
    // identical to a full ImageNet run (see DESIGN.md on mini-epochs).
    let opts = ExperimentOpts::scaled(30);

    println!("Training ResNet-50 on two compositions of the same hardware pool...\n");
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for config in [HostConfig::LocalGpus, HostConfig::FalconGpus] {
        let report = run(Benchmark::ResNet50, config, &opts).expect("ResNet-50 fits a V100");
        rows.push(composable_core::report::run_row(&report));
        reports.push((config, report));
    }
    println!("{}", table(&RUN_HEADERS, &rows));

    for (config, r) in &reports {
        println!(
            "{}",
            series_line(config.label(), &r.gpu_util_trace, "")
        );
    }

    let (_, local) = &reports[0];
    let (_, falcon) = &reports[1];
    println!(
        "\nPCIe-switching overhead for ResNet-50: {:+.1}% (paper Fig 11: < 5%)",
        falcon.pct_change_vs(local)
    );
    println!(
        "Falcon PCIe traffic: {:.2} GB/s (paper Fig 12: 11.31 GB/s)",
        falcon.falcon_pcie_rate / 1e9
    );
}
