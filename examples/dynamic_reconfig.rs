//! Dynamic re-provisioning (paper §III-B.3 and §VI): devices "can be
//! allocated and re-allocated dynamically on-the-fly across the connected
//! hosts". This example runs a BERT fine-tuning job in two phases on an
//! advanced-mode drawer:
//!
//!   phase 1 — the tenant holds all 8 pooled GPUs;
//!   phase 2 — operations claws 4 GPUs back for another host mid-job, and
//!             the job continues on the remaining 4 (same total samples).
//!
//! The chassis performs the reassignment through the management plane (so
//! mode rules and the audit trail apply), and the training engine simply
//! resumes on the re-composed cluster — the point of composability.
//!
//! ```text
//! cargo run --release --example dynamic_reconfig
//! ```

use composable_core::system::build_custom_falcon_host;
use desim::SimTime;
use devices::GpuSpec;
use dlmodels::Benchmark;
use falcon::{HostId, ManagementCenter, Role, SlotAddr, UserId};
use training::{run_job, JobConfig};

fn main() {
    let benchmark = Benchmark::BertBase;
    let total_iters = 120u64;

    // Phase 1: the tenant's host owns all 8 pooled V100s.
    let phase1_iters = total_iters / 2;
    let composed = build_custom_falcon_host(&GpuSpec::v100_pcie_16gb(), 8);
    let mut cfg = JobConfig::paper_scaled(benchmark, 8, phase1_iters);
    cfg.epochs = 1;
    cfg.checkpoint_each_epoch = true; // checkpoint at the handover point
    let chassis = composed.chassis.clone();
    let phase1 = run_job(composed.topology, composed.cluster, cfg).unwrap();
    println!(
        "phase 1: 8 pooled GPUs  {:4} iters in {}  ({:.0} samples/s)",
        phase1.iterations, phase1.total_time, phase1.throughput
    );

    // The re-composition, through the Management Center: ops reassigns
    // drawer 1's four GPUs to host 1 while the tenant keeps drawer 0.
    let mcs = ManagementCenter::new(chassis);
    let (admin, tenant) = (UserId(0), UserId(1));
    mcs.add_user(admin, Role::Admin);
    mcs.add_user(tenant, Role::User);
    let handover = SimTime::from_secs_f64(phase1.total_time.as_secs_f64());
    // Standard mode refuses on-the-fly reassignment — exactly the paper's
    // distinction between modes:
    let refused = mcs.reassign(handover, admin, SlotAddr::new(1, 0), HostId(1));
    println!(
        "\nreassign in standard mode -> {refused:?}\n(re-composition between jobs instead)"
    );

    // Phase 2: resume the job on a freshly composed 4-GPU host (restored
    // from the checkpoint written at the end of phase 1).
    let phase2_samples = phase1.iterations; // same per-GPU batch, half the GPUs
    let composed = build_custom_falcon_host(&GpuSpec::v100_pcie_16gb(), 4);
    let mut cfg = JobConfig::paper_scaled(benchmark, 4, phase2_samples * 2);
    cfg.epochs = 1;
    cfg.checkpoint_each_epoch = false;
    let phase2 = run_job(composed.topology, composed.cluster, cfg).unwrap();
    println!(
        "phase 2: 4 pooled GPUs  {:4} iters in {}  ({:.0} samples/s)",
        phase2.iterations, phase2.total_time, phase2.throughput
    );

    let degraded = 1.0 - phase2.throughput / phase1.throughput;
    println!(
        "\nThroughput degrades {:.0}% when half the pool is clawed back —",
        degraded * 100.0
    );
    println!("but the job keeps running on the re-composed system, and the freed");
    println!("GPUs serve another tenant: the utilization story of §I.");
}
