//! The paper's future work (§VI), working today: "build a system
//! framework that can take the input of various configured runs, and
//! recommend the optimal system level topology for AI workloads."
//!
//! ```text
//! cargo run --release --example topology_recommender
//! ```
//!
//! For each benchmark, the recommender simulates every candidate
//! composition and ranks them under three objectives.

use composable_core::recommend::{recommend, Objective};
use composable_core::report::table;
use composable_core::runner::ExperimentOpts;
use composable_core::HostConfig;
use dlmodels::Benchmark;

fn main() {
    let opts = ExperimentOpts::scaled(15).without_checkpoints();
    let candidates = HostConfig::gpu_configs();

    for objective in [
        Objective::TrainingTime,
        Objective::ThroughputPerGpu,
        Objective::Balance,
    ] {
        println!("== objective: {objective:?} ==\n");
        let mut rows = Vec::new();
        for b in Benchmark::all() {
            let ranked = recommend(b, &candidates, objective, &opts);
            let best = &ranked[0];
            let runner_up = &ranked[1];
            let margin = runner_up.report.total_time.as_secs_f64()
                / best.report.total_time.as_secs_f64();
            rows.push(vec![
                b.label().to_string(),
                best.config.label().to_string(),
                format!("{}", best.report.mean_iter),
                runner_up.config.label().to_string(),
                format!("{margin:.2}x"),
            ]);
        }
        println!(
            "{}",
            table(
                &["workload", "recommended", "iter", "runner-up", "runner-up slower by"],
                &rows
            )
        );
        println!();
    }

    println!("Reading: for small vision models the compositions tie — pool the GPUs");
    println!("behind the Falcon and keep the NVLink hosts for the large NLP models,");
    println!("which is exactly the co-design insight the paper's test bed exists to surface.");
}
