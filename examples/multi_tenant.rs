//! The enterprise side of the paper (§II-D, §III-B): three tenants share
//! one Falcon 4016 drawer in advanced mode through the Management Center
//! Server, with dynamic device re-provisioning between their hosts —
//! while the BMC watches thermals and the audit log records everything.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use desim::SimTime;
use devices::GpuSpec;
use falcon::{
    bmc::Severity, mgmt, Bmc, DrawerId, Falcon4016, HostId, HostPort, ManagementCenter, Mode,
    Role, SlotAddr, SlotDevice, UserId,
};

fn main() {
    // A drawer of eight V100 PCIe cards, advanced mode: up to three hosts.
    let mut chassis = Falcon4016::new("falcon0", Mode::Advanced);
    for s in 0..8 {
        chassis
            .insert_device(SlotAddr::new(0, s), SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()))
            .unwrap();
    }
    for (port, host) in [
        (HostPort::H1, HostId(1)),
        (HostPort::H2, HostId(2)),
        (HostPort::H3, HostId(3)),
    ] {
        chassis.connect_host(port, host, DrawerId(0)).unwrap();
    }

    let mcs = ManagementCenter::new(chassis);
    let admin = UserId(0);
    mcs.add_user(admin, Role::Admin);
    let tenants = [UserId(1), UserId(2), UserId(3)];
    for t in tenants {
        mcs.add_user(t, Role::User);
    }

    // Admin grants: tenant 1 gets four GPUs, tenants 2 and 3 two each.
    let t = |s| SimTime::from_secs(s);
    let grants: [(UserId, &[u8]); 3] = [
        (tenants[0], &[0, 1, 2, 3]),
        (tenants[1], &[4, 5]),
        (tenants[2], &[6, 7]),
    ];
    for (user, slots) in grants {
        for &s in slots {
            mcs.grant(t(0), admin, SlotAddr::new(0, s), user).unwrap();
        }
    }

    // Tenants self-serve attach to their own hosts.
    for (i, (user, slots)) in grants.iter().enumerate() {
        let host = HostId(i as u32 + 1);
        for &s in *slots {
            mcs.attach(t(1), *user, SlotAddr::new(0, s), host).unwrap();
        }
    }
    println!("After self-service composition:");
    println!("{}", mcs.with_chassis(mgmt::topology_view));

    // Isolation: tenant 2 cannot poach tenant 1's GPU.
    let theft = mcs.detach(t(2), tenants[1], SlotAddr::new(0, 0));
    println!("tenant 2 detaching tenant 1's d0s0 -> {theft:?}\n");

    // Dynamic reprovisioning: tenant 1 releases a GPU; admin re-grants it
    // to tenant 3, who pulls it into host 3 on the fly (advanced mode).
    mcs.detach(t(3), tenants[0], SlotAddr::new(0, 3)).unwrap();
    mcs.grant(t(3), admin, SlotAddr::new(0, 3), tenants[2]).unwrap();
    mcs.attach(t(4), tenants[2], SlotAddr::new(0, 3), HostId(3)).unwrap();
    println!("After dynamic re-provisioning of d0s3 to host3:");
    println!("{}", mcs.with_chassis(mgmt::list_view));

    // BMC thermals: the drawer heats as the tenants load their GPUs.
    let mut bmc = Bmc::falcon_defaults();
    for (minute, load) in [(0u64, 0.2), (5, 0.9), (10, 1.0), (15, 0.3)] {
        bmc.report_load(t(minute * 60), "drawer0", load);
        println!(
            "t+{minute:2}min load {load:.0}%: drawer0 at {:.1}°C, fans {:.0}%",
            bmc.temperature("drawer0").unwrap(),
            bmc.fan_speed() * 100.0,
        );
    }
    println!("\nBMC alerts:");
    for e in bmc.events_at_least(Severity::Warning) {
        println!("  [{}] {:?}: {}", e.at, e.severity, e.message);
    }

    // The audit trail (admin-only export).
    println!("\nAudit log (admin export):");
    for entry in mcs.export_audit(admin).unwrap() {
        println!(
            "  [{}] user{} {} -> {}",
            entry.at,
            entry.user.0,
            entry.action,
            if entry.allowed { "ok" } else { "DENIED" }
        );
    }
}
