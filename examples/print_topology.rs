//! Inspect the composed fabric: print the management topology view, the
//! Graphviz rendering, and the JSON snapshot of a Table III configuration.
//!
//! ```text
//! cargo run --release --example print_topology -- falconGPUs > fabric.dot
//! dot -Tsvg fabric.dot -o fabric.svg   # if graphviz is installed
//! ```

use composable_core::{build_config, HostConfig};
use fabric::TopologySpec;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "hybridGPUs".to_string());
    let config = HostConfig::all()
        .into_iter()
        .find(|c| c.label().eq_ignore_ascii_case(&arg))
        .unwrap_or(HostConfig::HybridGpus);

    let composed = build_config(config);
    eprintln!("# {} — {}", config.label(), config.description());
    eprintln!(
        "# {} fabric nodes, {} links",
        composed.topology.node_count(),
        composed.topology.link_count()
    );
    eprintln!("\n# management topology view:");
    for line in falcon::mgmt::topology_view(&composed.chassis).lines() {
        eprintln!("# {line}");
    }

    // The DOT graph goes to stdout so it can be piped into graphviz.
    println!("{}", fabric::to_dot(&composed.topology));

    // And the machine-readable snapshot round-trips.
    let spec = TopologySpec::capture(&composed.topology);
    let rebuilt = spec.rebuild();
    assert_eq!(rebuilt.node_count(), composed.topology.node_count());
    eprintln!(
        "# JSON snapshot: {} bytes (round-trip verified)",
        spec.to_json_string().len()
    );
}
