//! The paper's headline experiment, as a user would run it: fine-tune
//! BERT on SQuAD across all three GPU compositions and study the
//! software-level optimizations of Fig 16.
//!
//! ```text
//! cargo run --release --example bert_finetune
//! ```

use composable_core::report::table;
use composable_core::runner::{run, ExperimentOpts};
use composable_core::HostConfig;
use dlmodels::{Benchmark, Precision};
use training::Strategy;

fn main() {
    let opts = ExperimentOpts::scaled(40).without_checkpoints();

    println!("== BERT-large SQuAD fine-tuning across compositions (DDP + AMP) ==\n");
    let mut rows = Vec::new();
    let mut baseline = None;
    for config in HostConfig::gpu_configs() {
        let r = run(Benchmark::BertLarge, config, &opts).unwrap();
        let pct = baseline
            .as_ref()
            .map_or("baseline".to_string(), |b| format!("{:+.1}%", r.pct_change_vs(b)));
        rows.push(vec![
            config.label().to_string(),
            format!("{}", r.mean_iter),
            format!("{:.0} samples/s", r.throughput),
            format!("{:.0}%", r.exposed_comm_share * 100.0),
            pct,
        ]);
        if baseline.is_none() {
            baseline = Some(r);
        }
    }
    println!(
        "{}",
        table(
            &["config", "iteration", "throughput", "exposed comm", "Δ vs localGPUs"],
            &rows
        )
    );
    println!("paper §V-C.2: BERT-large takes almost 2x on Falcon-attached GPUs.\n");

    println!("== Where the time goes (phase breakdown, falconGPUs) ==\n");
    let r = run(Benchmark::BertLarge, HostConfig::FalconGpus, &opts).unwrap();
    let total: f64 = r.phase_totals.iter().map(|(_, v)| v).sum();
    for (label, secs) in &r.phase_totals {
        println!("  {label:>12}: {:5.1}%", 100.0 * secs / total);
    }
    println!();

    println!("== Software-level optimizations on falconGPUs (Fig 16) ==\n");
    let variants: [(&str, Strategy, Precision, Option<u64>); 4] = [
        ("DataParallel fp32", Strategy::Dp, Precision::Fp32, None),
        ("DDP fp32", Strategy::ddp(), Precision::Fp32, None),
        ("DDP + AMP fp16", Strategy::ddp(), Precision::Fp16, None),
        ("DDP + AMP + sharded", Strategy::sharded(), Precision::Fp16, Some(10)),
    ];
    let mut rows = Vec::new();
    for (name, strategy, precision, batch) in variants {
        let mut o = opts
            .clone()
            .with_strategy(strategy)
            .with_precision(precision)
            .with_auto_batch();
        if let Some(b) = batch {
            o = o.with_batch(b);
        }
        let r = run(Benchmark::BertLarge, HostConfig::FalconGpus, &o).unwrap();
        rows.push(vec![
            name.to_string(),
            format!("{}", r.mean_iter),
            format!("{:.0} samples/s", r.throughput),
        ]);
    }
    println!("{}", table(&["variant", "iteration", "throughput"], &rows));
    println!("paper §V-C.4: mixed precision > 70% faster on Falcon GPUs; DDP >> DP;");
    println!("sharding lifts the feasible batch from 6 to 10 with additional speedup.");
}
