//! The storage study (paper §V-C.3 / Fig 15): compare SATA scratch,
//! locally attached NVMe, and Falcon-attached NVMe under the same
//! 8-local-GPU host, including cold first-epoch dataset reads and
//! epoch-end checkpoints.
//!
//! ```text
//! cargo run --release --example storage_study
//! ```

use composable_core::report::{pct, table};
use composable_core::runner::{run, ExperimentOpts};
use composable_core::HostConfig;
use dlmodels::Benchmark;

fn main() {
    // Checkpoints and cold epochs on — they are what storage changes.
    let opts = ExperimentOpts {
        iters_per_epoch: Some(40),
        ..ExperimentOpts::default()
    };

    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let base = run(b, HostConfig::LocalGpus, &opts).unwrap();
        for config in [HostConfig::LocalNvme, HostConfig::FalconNvme] {
            let r = run(b, config, &opts).unwrap();
            rows.push(vec![
                b.label().to_string(),
                config.label().to_string(),
                format!("{}", r.total_time),
                pct(r.pct_change_vs(&base)),
                format!("{:.1}%", r.input_stall_share * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["benchmark", "storage", "total", "Δ vs local scratch", "input stall"],
            &rows
        )
    );
    println!("\npaper: NVMe gives additional acceleration for the data-heavy benchmarks;");
    println!("the falcon-attached NVMe pays only a small switching overhead.");
    println!("(Negative Δ = faster than the SATA-scratch baseline.)");
}
