//! Parallel execution must never change a byte of output: every sweep in
//! the workspace (cluster policy replays, recommendation ranking, probe
//! warming) produces identical results at `--jobs 1` and `--jobs 4`, and
//! across repeated parallel runs. This is the contract `parsweep` exists
//! to uphold (DESIGN §9) and what lets the golden tables stay valid while
//! the harness fans out.

use composable_core::{recommend_jobs, ExperimentOpts, HostConfig, Objective};
use dlmodels::Benchmark;
use scheduler::{
    all_policies, compare_policies_cached, compare_policies_cached_on, compare_policies_faulty,
    compare_policies_mixed, paper_fault_plan, run_matrix, run_scenario, seeded_pai_mix,
    serving_policies, trace, warm_set_for_trace, ProbeCache, RackTopology, Scenario,
    SchedulerConfig,
};

fn replay_snapshot(jobs: usize) -> (Vec<String>, String) {
    let t = trace::seeded_two_tenant(12, 0xBEEF);
    let cfg = SchedulerConfig::default();
    let mut cache = ProbeCache::new(cfg.probe_iters);
    let reports = compare_policies_cached(&t, all_policies(), &cfg, jobs, &mut cache)
        .expect("trace drains under every policy");
    let reports: Vec<String> = reports.iter().map(|r| r.to_json_string()).collect();
    (reports, cache.save_json())
}

/// Cluster `ScheduleReport`s *and* the resulting probe-cache contents are
/// byte-identical for 1 vs 4 workers, and across two 4-worker runs
/// (replays race freely; merge order may not depend on the race).
#[test]
fn cluster_replay_identical_across_worker_counts() {
    let serial = replay_snapshot(1);
    let parallel = replay_snapshot(4);
    let parallel_again = replay_snapshot(4);
    assert_eq!(serial.0, parallel.0, "reports must not depend on worker count");
    assert_eq!(serial.1, parallel.1, "probe cache must not depend on worker count");
    assert_eq!(parallel, parallel_again, "parallel runs must not race");
}

fn scale_snapshot(jobs: usize) -> (Vec<String>, String) {
    let topo = RackTopology::with_chassis(2); // 32 pooled GPUs across the rack fabric
    let t = trace::seeded_two_tenant(24, 0xBEEF);
    let cfg = SchedulerConfig { quota_gpus_per_tenant: 20, ..SchedulerConfig::default() };
    let mut cache = ProbeCache::new_for(cfg.probe_iters, topo);
    let reports = compare_policies_cached_on(topo, &t, all_policies(), &cfg, jobs, &mut cache)
        .expect("trace drains under every policy on the 2-chassis rack");
    let reports: Vec<String> = reports.iter().map(|r| r.to_json_string()).collect();
    (reports, cache.save_json())
}

/// The multi-chassis rack keeps the contract: a 32-GPU (2-chassis) study
/// replayed at `--jobs 1` and `--jobs 4` (and across repeated parallel
/// runs) yields byte-identical reports — cross-chassis placement pricing
/// included — and byte-identical probe caches.
#[test]
fn rack_scale_replay_identical_across_worker_counts() {
    let serial = scale_snapshot(1);
    let parallel = scale_snapshot(4);
    let parallel_again = scale_snapshot(4);
    assert_eq!(serial.0, parallel.0, "scale reports must not depend on worker count");
    assert_eq!(serial.1, parallel.1, "probe cache must not depend on worker count");
    assert_eq!(parallel, parallel_again, "parallel scale runs must not race");
    for r in &serial.0 {
        assert!(r.contains("\"pool_gpus\": 32"), "the rack pools 32 GPUs: {r}");
    }
}

fn priority_snapshot(jobs: usize) -> (Vec<String>, String) {
    let topo = RackTopology::with_chassis(2);
    let t = trace::seeded_two_tenant(24, 0xBEEF);
    let cfg = SchedulerConfig {
        preempt: true,
        defrag: true,
        quota_gpus_per_tenant: 20,
        ..SchedulerConfig::default()
    };
    let mut cache = ProbeCache::new_for(cfg.probe_iters, topo);
    let reports = compare_policies_cached_on(topo, &t, all_policies(), &cfg, jobs, &mut cache)
        .expect("tiered trace drains under every policy with preemption on");
    let reports: Vec<String> = reports.iter().map(|r| r.to_json_string()).collect();
    (reports, cache.save_json())
}

/// Checkpoint preemption and migration defrag keep the contract: the same
/// contended 2-chassis study as `scale_snapshot` with the priority knobs
/// on — so victims are chosen, rolled back, and resumed mid-replay —
/// yields byte-identical reports (migration ledger included) and probe
/// caches at `--jobs 1` and `--jobs 4`, and across repeated parallel runs.
#[test]
fn priority_replay_identical_across_worker_counts() {
    let serial = priority_snapshot(1);
    let parallel = priority_snapshot(4);
    let parallel_again = priority_snapshot(4);
    assert_eq!(serial.0, parallel.0, "priority reports must not depend on worker count");
    assert_eq!(serial.1, parallel.1, "probe cache must not depend on worker count");
    assert_eq!(parallel, parallel_again, "parallel priority runs must not race");
    for r in &serial.0 {
        assert!(r.contains("\"preemptions\""), "every priority report carries the ledger: {r}");
        assert!(r.contains("\"work_lost_gpu_secs\""));
    }
}

fn faulty_snapshot(jobs: usize) -> (Vec<String>, String) {
    let t = trace::seeded_two_tenant(12, 0xBEEF);
    let plan = paper_fault_plan();
    let cfg = SchedulerConfig::default();
    let mut cache = ProbeCache::new(cfg.probe_iters);
    let pairs = compare_policies_faulty(&t, all_policies(), &plan, &cfg, jobs, &mut cache)
        .expect("faulty trace drains under every policy");
    let reports: Vec<String> = pairs
        .iter()
        .flat_map(|(base, faulty)| [base.to_json_string(), faulty.to_json_string()])
        .collect();
    (reports, cache.save_json())
}

/// Failure injection keeps the contract: a seeded fault plan replayed at
/// `--jobs 1` and `--jobs 4` (and across repeated parallel runs) yields
/// byte-identical baseline and faulty reports — recovery-metrics block
/// included — and byte-identical probe caches.
#[test]
fn faulty_replay_identical_across_worker_counts() {
    let serial = faulty_snapshot(1);
    let parallel = faulty_snapshot(4);
    let parallel_again = faulty_snapshot(4);
    assert_eq!(serial.0, parallel.0, "faulty reports must not depend on worker count");
    assert_eq!(serial.1, parallel.1, "probe cache must not depend on worker count");
    assert_eq!(parallel, parallel_again, "parallel faulty runs must not race");
    // The determinism we just certified covers the recovery block: every
    // faulty report carries one, no baseline report does.
    for pair in serial.0.chunks(2) {
        assert!(!pair[0].contains("\"recovery\""), "baseline stays fault-free");
        assert!(pair[1].contains("\"recovery\""), "faulty replay reports recovery");
        assert!(pair[1].contains("\"mean_recovery_ns\""));
    }
}

fn mixed_snapshot(jobs: usize) -> (Vec<String>, String) {
    let mix = seeded_pai_mix(6, 4, 0xBEEF);
    let cfg = SchedulerConfig::default();
    let mut cache = ProbeCache::new(cfg.probe_iters);
    let reports = compare_policies_mixed(&mix, serving_policies(), &cfg, jobs, &mut cache)
        .expect("mixed trace drains under every policy");
    let reports: Vec<String> = reports.iter().map(|r| r.to_json_string()).collect();
    (reports, cache.save_json())
}

/// Inference serving keeps the contract: a mixed training + serving trace
/// replayed at `--jobs 1` and `--jobs 4` (and across repeated parallel
/// runs) yields byte-identical reports — per-service SLO metrics
/// included — and byte-identical probe caches.
#[test]
fn mixed_serving_replay_identical_across_worker_counts() {
    let serial = mixed_snapshot(1);
    let parallel = mixed_snapshot(4);
    let parallel_again = mixed_snapshot(4);
    assert_eq!(serial.0, parallel.0, "mixed reports must not depend on worker count");
    assert_eq!(serial.1, parallel.1, "probe cache must not depend on worker count");
    assert_eq!(parallel, parallel_again, "parallel mixed runs must not race");
    for r in &serial.0 {
        assert!(r.contains("\"serve\""), "every mixed report carries a serve block");
        assert!(r.contains("\"attainment\""));
    }
}

fn scenario_matrix_snapshot(jobs: usize) -> (Vec<String>, String) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("scenarios/ is checked in")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let scenarios: Vec<Scenario> = paths
        .iter()
        .map(|p| Scenario::from_json_str(&std::fs::read_to_string(p).unwrap()).unwrap())
        .collect();
    let mut cache = ProbeCache::new(SchedulerConfig::default().probe_iters);
    let reports = run_matrix(&scenarios, jobs, &mut cache).expect("every pinned scenario runs");
    let reports: Vec<String> = reports.iter().map(|r| r.canonical_json_string()).collect();
    (reports, cache.save_json())
}

/// The scenario matrix keeps the contract: the whole checked-in
/// `scenarios/` directory fanned across 1 vs 4 workers (and across
/// repeated parallel runs) yields byte-identical canonical reports and a
/// byte-identical shared probe cache — the property `repro
/// scenario-matrix --jobs N` advertises.
#[test]
fn scenario_matrix_identical_across_worker_counts() {
    let serial = scenario_matrix_snapshot(1);
    let parallel = scenario_matrix_snapshot(4);
    let parallel_again = scenario_matrix_snapshot(4);
    assert!(serial.0.len() >= 5, "the pinned scenario set ran");
    assert_eq!(serial.0, parallel.0, "scenario reports must not depend on worker count");
    assert_eq!(serial.1, parallel.1, "probe cache must not depend on worker count");
    assert_eq!(parallel, parallel_again, "parallel matrix runs must not race");
}

/// The production-scale replay workload keeps the contract on its own
/// terms: `scenarios/pai_magnitude.json` (10k training jobs + 60
/// services on the 128-GPU rack, epoch-sharded serving, amortized
/// audits) replayed at `--jobs 1` and `--jobs 4` yields byte-identical
/// canonical reports. This is the same identity `benches/replay_scale.rs`
/// asserts in release mode; pinning it here keeps it in the plain test
/// suite where every CI run sees it.
#[test]
fn pai_magnitude_replay_identical_across_worker_counts() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/pai_magnitude.json");
    let sc = Scenario::from_json_str(&std::fs::read_to_string(path).unwrap()).unwrap();
    let mut cache = ProbeCache::new(sc.config.probe_iters);
    let serial = run_scenario(&sc, 1, &mut cache).unwrap().canonical_json_string();
    let parallel = run_scenario(&sc, 4, &mut cache).unwrap().canonical_json_string();
    assert_eq!(serial, parallel, "epoch-sharded serving must not depend on worker count");
    assert!(serial.contains("\"n_jobs\": 10000"), "the full 10k-job trace ran");
    assert!(serial.contains("\"n_services\": 60"), "all 48 mixed + 12 pinned services ran");
}

fn autotune_snapshot(jobs: usize) -> (String, String) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/portfolio_default");
    let pf = autotune::Portfolio::load_dir(std::path::Path::new(dir))
        .expect("the default portfolio is checked in");
    let spec = autotune::SearchSpec { seed: 3, budget: 24 };
    let mut cache = ProbeCache::new(pf.probe_iters());
    let tuned = autotune::tune(&pf, &spec, jobs, &mut cache).expect("small-budget tune runs");
    (tuned.to_json_string(), cache.save_json())
}

/// The policy search keeps the contract: a small-budget `tune()` over the
/// default portfolio — candidate evaluations fanned across the worker
/// pool — yields a byte-identical `TunedPolicy` artifact and probe cache
/// at `--jobs 1` and `--jobs 4`, and across repeated parallel runs. This
/// is the same identity `repro autotune` advertises at full budget.
#[test]
fn autotune_identical_across_worker_counts() {
    let serial = autotune_snapshot(1);
    let parallel = autotune_snapshot(4);
    let parallel_again = autotune_snapshot(4);
    assert_eq!(serial.0, parallel.0, "tuned artifact must not depend on worker count");
    assert_eq!(serial.1, parallel.1, "probe cache must not depend on worker count");
    assert_eq!(parallel, parallel_again, "parallel tunes must not race");
    assert!(serial.0.contains("\"portfolio_hash\""), "artifact carries provenance");
}

/// `recommend` ranks identically (same order, same scores, same attached
/// reports) at 1 and 4 workers.
#[test]
fn recommend_identical_across_worker_counts() {
    let snapshot = |jobs: usize| {
        recommend_jobs(
            Benchmark::BertLarge,
            &HostConfig::gpu_configs(),
            Objective::TrainingTime,
            &ExperimentOpts::scaled(3),
            jobs,
        )
        .into_iter()
        .map(|r| {
            format!("{:?} {} {}", r.config, r.score, r.report.to_json_string())
        })
        .collect::<Vec<_>>()
    };
    let serial = snapshot(1);
    assert_eq!(serial, snapshot(4));
    assert!(!serial.is_empty());
}

/// Probe-cache persistence closes the loop: a cache saved by one run and
/// loaded by the next prices the same portfolio with **zero** probe
/// simulations and byte-identical reports.
#[test]
fn persisted_probe_cache_eliminates_second_run_probes() {
    let t = trace::seeded_two_tenant(10, 0x5EED5);
    let cfg = SchedulerConfig::default();

    let mut first = ProbeCache::new(cfg.probe_iters);
    let reports_a = compare_policies_cached(&t, all_policies(), &cfg, 2, &mut first).unwrap();
    assert!(first.probes_run() > 0, "the first run must actually probe");
    let persisted = first.save_json();

    let mut second = ProbeCache::load_str(&persisted, cfg.probe_iters);
    assert_eq!(second.len(), first.len(), "every entry must round-trip");
    let reports_b = compare_policies_cached(&t, all_policies(), &cfg, 2, &mut second).unwrap();
    assert_eq!(
        second.probes_run(),
        0,
        "a warm persisted cache must make the second run probe-free"
    );
    let a: Vec<String> = reports_a.iter().map(|r| r.to_json_string()).collect();
    let b: Vec<String> = reports_b.iter().map(|r| r.to_json_string()).collect();
    assert_eq!(a, b, "cached pricing must not change a byte of the reports");
    assert_eq!(second.save_json(), persisted, "save/load/save is a fixpoint");
}

/// Warming in parallel produces the same cache bytes as warming serially,
/// for the exact key set a trace replay draws on.
#[test]
fn parallel_warm_matches_serial_warm_for_a_trace() {
    let t = trace::seeded_two_tenant(8, 0xAB);
    let keys = warm_set_for_trace(&t);
    assert!(!keys.is_empty());
    let cfg = SchedulerConfig::default();
    let mut serial = ProbeCache::new(cfg.probe_iters);
    serial.warm(&keys, 1);
    let mut parallel = ProbeCache::new(cfg.probe_iters);
    parallel.warm(&keys, 4);
    assert_eq!(serial.save_json(), parallel.save_json());
    assert_eq!(serial.probes_run(), parallel.probes_run());
}
