//! End-to-end determinism: the whole simulator must be a pure function of
//! its configuration and seed. This is what makes the golden-table
//! regression tests (crates/bench/tests/golden_tables.rs) sound.

use composable_core::runner::{run, ExperimentOpts};
use composable_core::HostConfig;
use desim::SimRng;
use dlmodels::Benchmark;
use scheduler::{all_policies, compare_policies, trace, SchedulerConfig};

/// The same (benchmark, config, opts, seed) twice produces byte-identical
/// RunReport JSON — every field, including the utilization traces.
#[test]
fn identical_runs_serialize_identically() {
    let mk = || {
        let mut opts = ExperimentOpts::scaled(6).without_checkpoints();
        opts.seed = 42;
        run(Benchmark::ResNet50, HostConfig::FalconGpus, &opts)
            .unwrap()
            .to_json_string()
            .into_bytes()
    };
    assert_eq!(mk(), mk(), "replay must be byte-identical");
}

/// Different seeds actually change the report (the jitter path is live,
/// so the byte-identity above is not vacuous).
#[test]
fn different_seeds_differ() {
    let mk = |seed: u64| {
        let mut opts = ExperimentOpts::scaled(6).without_checkpoints();
        opts.seed = seed;
        run(Benchmark::ResNet50, HostConfig::LocalGpus, &opts)
            .unwrap()
            .to_json_string()
    };
    assert_ne!(mk(1), mk(2));
}

/// The cluster scheduler inherits the same guarantee end to end: an equal
/// seed replays an equal trace to byte-identical reports under every
/// policy — trace generation, probe pricing, placement, elastic shrink,
/// and the metrics rollup are all pure functions of their inputs.
#[test]
fn cluster_replay_is_byte_identical_under_equal_seeds() {
    let mk = || {
        let t = trace::seeded_two_tenant(12, 0xBEEF);
        compare_policies(&t, all_policies(), &SchedulerConfig::default())
            .unwrap()
            .into_iter()
            .map(|r| r.to_json_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(mk(), mk(), "cluster replay must be byte-identical");

    // And a different seed genuinely changes the schedule.
    let other = compare_policies(
        &trace::seeded_two_tenant(12, 0xBEE5),
        all_policies(),
        &SchedulerConfig::default(),
    )
    .unwrap();
    assert_ne!(other[0].to_json_string(), mk()[0]);
}

/// Forked RNG streams are independent of sibling draw order: how much one
/// fork is consumed cannot change what a sibling fork produces. This is
/// the property that lets subsystems (dataloader jitter, kernel jitter,
/// checkpoint timing) draw randomness without coupling to each other.
#[test]
fn forked_streams_are_order_independent() {
    let draws = |consume_sibling_first: bool| {
        let root = SimRng::seed_from_u64(0xDEC0DE);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        if consume_sibling_first {
            for _ in 0..1000 {
                a.next_u64();
            }
        }
        (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
    };
    assert_eq!(draws(false), draws(true));

    // Forking does not advance the parent either: the parent's own stream
    // is the same whether or not forks were taken from it.
    let mut plain = SimRng::seed_from_u64(99);
    let mut forked = SimRng::seed_from_u64(99);
    let _ = forked.fork(7);
    let _ = forked.fork(8);
    assert_eq!(plain.next_u64(), forked.next_u64());

    // And distinct fork tags give distinct streams.
    let root = SimRng::seed_from_u64(5);
    assert_ne!(root.fork(1).next_u64(), root.fork(2).next_u64());
}
