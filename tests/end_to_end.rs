//! Workspace-level integration tests: cross-crate scenarios that exercise
//! the full stack (chassis → fabric → devices → training → reports).

use composable_core::runner::{run, ExperimentOpts};
use composable_core::{build_config, HostConfig};
use desim::{Sim, SimTime};
use devices::GpuSpec;
use dlmodels::Benchmark;
use falcon::{mgmt, DrawerId, Falcon4016, HostId, HostPort, Mode, SlotAddr, SlotDevice};
use std::collections::BTreeMap;

/// Composing through the chassis, training on the result, and inspecting
/// the management plane all agree with each other.
#[test]
fn composition_training_and_management_agree() {
    let composed = build_config(HostConfig::FalconGpus);
    // Management plane sees 8 attached GPUs.
    let records = mgmt::resource_list(&composed.chassis);
    let attached: Vec<_> = records.iter().filter(|r| r.owner.is_some()).collect();
    assert_eq!(attached.len(), 8);
    // The cluster trains on exactly those devices.
    assert_eq!(composed.cluster.n_gpus(), 8);
    let r = run(
        Benchmark::MobileNetV2,
        HostConfig::FalconGpus,
        &ExperimentOpts::scaled(5),
    )
    .unwrap();
    assert!(r.falcon_pcie_rate > 0.0, "traffic flows through the chassis");
}

/// Allocation export → import round-trips through JSON and rebuilds the
/// same attachment state (paper §II-B: configuration files).
#[test]
fn allocation_config_roundtrip_via_json_file() {
    let composed = build_config(HostConfig::HybridGpus);
    let exported = mgmt::AllocationConfig::export(&composed.chassis);
    let bytes = exported.to_bytes();
    let parsed = mgmt::AllocationConfig::from_bytes(&bytes).unwrap();
    assert_eq!(parsed, exported);
    assert_eq!(parsed.assignments.len(), 4, "hybrid attaches 4 falcon GPUs");

    // Rebuild a fresh chassis and apply the file.
    let mut fresh = build_config(HostConfig::HybridGpus).chassis;
    for (slot, _) in fresh.attachments().collect::<Vec<_>>() {
        fresh.detach(slot).unwrap();
    }
    parsed.import(&mut fresh).unwrap();
    assert_eq!(fresh.attachments().count(), 4);
}

/// Advanced mode: a tenant composes a *two-GPU* host from the shared
/// drawer and trains on it — exercising the engine on a non-paper GPU
/// count (ring of 2).
#[test]
fn tenant_scale_two_gpu_training_run() {
    use fabric::{LinkClass, LinkSpec, NodeKind, Topology};
    use training::{run_job, Cluster, GpuHandle, JobConfig};

    let mut topo = Topology::new();
    let rc = topo.add_node("tenant.rc", NodeKind::RootComplex);
    let mem = topo.add_node("tenant.dram", NodeKind::Memory);
    topo.add_link(rc, mem, LinkSpec::of(LinkClass::MemoryBus));
    let storage = devices::storage::add_storage(
        &mut topo,
        "tenant.nvme",
        &devices::StorageSpec::intel_p4500_4tb(),
    );
    topo.add_link(storage.port, rc, LinkSpec::of(LinkClass::PcieGen3x4));

    let mut chassis = Falcon4016::new("falcon0", Mode::Advanced);
    chassis.connect_host(HostPort::H1, HostId(7), DrawerId(0)).unwrap();
    for s in 0..2 {
        let addr = SlotAddr::new(0, s);
        chassis
            .insert_device(addr, SlotDevice::Gpu(GpuSpec::v100_pcie_16gb()))
            .unwrap();
        chassis.attach(addr, HostId(7)).unwrap();
    }
    let mut hosts = BTreeMap::new();
    hosts.insert(HostId(7), rc);
    chassis.materialize(&mut topo, &hosts).unwrap();

    let gpus = (0..2)
        .map(|s| {
            let nodes = chassis.slot_nodes(SlotAddr::new(0, s)).unwrap();
            GpuHandle {
                core: nodes.endpoint,
                port: nodes.port,
                spec: GpuSpec::v100_pcie_16gb(),
                falcon_attached: true,
            }
        })
        .collect();
    let cluster = Cluster {
        host_rc: rc,
        host_mem: mem,
        gpus,
        storage_dev: storage.device,
        storage: devices::StorageSpec::intel_p4500_4tb(),
        storage_falcon_attached: false,
        cpu: devices::CpuSpec::dual_xeon_6148(),
        dram: devices::DramSpec::host_756gb(),
        label: "tenant-2gpu".to_string(),
    };

    let cfg = JobConfig::paper_scaled(Benchmark::ResNet50, 2, 8);
    let report = run_job(topo, cluster, cfg).unwrap();
    assert_eq!(report.iterations, 16);
    assert!(report.throughput > 0.0);
    assert!(report.gpu_util > 0.3);
}

/// The whole Fig 10–14 grid is deterministic end to end.
#[test]
fn full_grid_is_deterministic() {
    let opts = ExperimentOpts::scaled(4);
    let a = composable_core::runner::gpu_config_grid(&opts);
    let b = composable_core::runner::gpu_config_grid(&opts);
    for ((b1, c1, r1), (b2, c2, r2)) in a.iter().zip(&b) {
        assert_eq!(b1, b2);
        assert_eq!(c1, c2);
        assert_eq!(r1.total_time, r2.total_time);
        assert_eq!(r1.falcon_pcie_rate, r2.falcon_pcie_rate);
        assert_eq!(r1.gpu_util_trace, r2.gpu_util_trace);
    }
}

/// Run reports serialize (for downstream tooling).
#[test]
fn run_report_serializes() {
    let r = run(
        Benchmark::MobileNetV2,
        HostConfig::LocalGpus,
        &ExperimentOpts::scaled(3),
    )
    .unwrap();
    let json = r.to_json_string();
    let back = training::RunReport::from_json_str(&json).unwrap();
    assert_eq!(back.total_time, r.total_time);
    assert_eq!(back.benchmark, r.benchmark);
}

/// The microbenchmark layer and the training layer see the same fabric:
/// a raw p2p probe on the composed topology matches the calibrated
/// Table IV class.
#[test]
fn probe_on_composed_topology_matches_calibration() {
    let composed = build_config(HostConfig::FalconGpus);
    let g = &composed.cluster.gpus;
    let ff = fabric::microbench::p2p_probe(&composed.topology, g[0].core, g[1].core, 4e9);
    let gbs = ff.bidir_bandwidth / 1e9;
    assert!((gbs - 24.47).abs() < 1.5, "F-F on composed system: {gbs}");
}

/// Fabric invariants hold under the real training workload, not just
/// synthetic proptest topologies.
#[test]
fn fairness_invariants_hold_during_training() {
    use fabric::FlowWorld;
    // Drive a short BERT run manually so we can interpose checks.
    let composed = build_config(HostConfig::FalconGpus);
    let cfg = training::JobConfig::paper_scaled(Benchmark::BertBase, 8, 3);
    // run_job does not expose stepping; emulate by running and then
    // asserting the run completed with conserved port counters.
    let report = training::run_job(composed.topology, composed.cluster, cfg).unwrap();
    assert_eq!(report.iterations, 6);
    // Sanity: a fresh world's fabric checks cleanly (no active flows).
    struct W {
        fabric: fabric::FabricState<W>,
    }
    impl FlowWorld for W {
        fn fabric(&mut self) -> &mut fabric::FabricState<W> {
            &mut self.fabric
        }
    }
    let composed2 = build_config(HostConfig::FalconGpus);
    let mut w = W {
        fabric: fabric::FabricState::new(composed2.topology),
    };
    let mut sim: Sim<W> = Sim::new();
    let (a, b) = (composed2.cluster.gpus[0].core, composed2.cluster.gpus[5].core);
    w.fabric.start_flow(
        &mut sim,
        a,
        b,
        1e9,
        fabric::FlowTag::COLLECTIVE,
        Box::new(|_, _| {}),
    );
    sim.run_until(&mut w, SimTime::from_millis(10));
    w.fabric.check_invariants();
}
