//! `composable-system` — umbrella crate of the composable-sim workspace.
//!
//! A Rust reproduction of *"Performance Analysis of Deep Learning
//! Workloads on a Composable System"* (IPPS 2021): a flow-level
//! discrete-event simulation of an IBM-style composable infrastructure
//! (Falcon 4016 PCIe chassis + Supermicro V100 hosts) and the five deep
//! learning benchmarks the paper characterizes on it.
//!
//! This crate re-exports the workspace members and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//! Start with [`composable_core`]'s `runner` and `HostConfig`, or run:
//!
//! ```text
//! cargo run --release -p bench --bin repro -- --quick
//! ```

pub use collectives;
pub use composable_core;
pub use desim;
pub use devices;
pub use dlmodels;
pub use fabric;
pub use falcon;
pub use training;
