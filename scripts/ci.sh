#!/usr/bin/env sh
# CI entry point: the tier-1 verification plus the hermeticity gate.
#
# The workspace must build and test with NO network and NO registry
# dependencies — every dependency is a path dependency inside this repo.
# `--offline --locked` makes cargo fail loudly if that ever regresses,
# and the Cargo.lock grep proves no registry source snuck back in.

set -eu

cd "$(dirname "$0")/.."

echo "== hermeticity: offline, locked build =="
cargo build --offline --locked --workspace

echo "== hermeticity: Cargo.lock has no registry sources =="
if grep -q 'source = ' Cargo.lock; then
    echo "ERROR: Cargo.lock references an external source:" >&2
    grep 'source = ' Cargo.lock >&2
    exit 1
fi

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "== workspace tests (all property + golden suites) =="
cargo test -q --offline --workspace

echo "== benches compile (smoke run, 1 iteration) =="
TESTKIT_BENCH_ITERS=1 TESTKIT_BENCH_WARMUP=0 cargo bench --offline -p bench

echo "== cluster scheduler smoke (repro cluster --quick, 2 parallel workers) =="
cargo run --release --offline -p bench --bin repro -- cluster --quick --jobs 2

echo "== failure-injection smoke (repro faults --jobs 2; asserts recovery clock > 0) =="
cargo run --release --offline -p bench --bin repro -- faults --quick --jobs 2

echo "== inference-serving smoke (repro serve --quick --jobs 2) =="
cargo run --release --offline -p bench --bin repro -- serve --quick --jobs 2

echo "== byte-determinism guard: golden cluster_serve.json still matches =="
cargo test -q --offline -p bench --test golden_tables golden_cluster_serve

echo "== byte-determinism guard: golden cluster_fifo.json still matches =="
cargo test -q --offline -p bench --test golden_tables golden_cluster_fifo

echo "== byte-determinism guard: golden cluster_faults.json still matches =="
cargo test -q --offline -p bench --test golden_tables golden_cluster_faults

echo "CI OK"
