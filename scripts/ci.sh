#!/usr/bin/env sh
# CI entry point: the tier-1 verification plus the hermeticity gate.
#
# The workspace must build and test with NO network and NO registry
# dependencies — every dependency is a path dependency inside this repo.
# `--offline --locked` makes cargo fail loudly if that ever regresses,
# and the Cargo.lock grep proves no registry source snuck back in.

set -eu

cd "$(dirname "$0")/.."

echo "== hermeticity: offline, locked build =="
cargo build --offline --locked --workspace

echo "== hermeticity: Cargo.lock has no registry sources =="
if grep -q 'source = ' Cargo.lock; then
    echo "ERROR: Cargo.lock references an external source:" >&2
    grep 'source = ' Cargo.lock >&2
    exit 1
fi

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "== workspace tests (all property + golden suites) =="
cargo test -q --offline --workspace

echo "== benches compile (smoke run, 1 iteration; refreshes BENCH_*.json) =="
# This pass regenerates every BENCH_*.json baseline, so a stale baseline
# never outlives the engine change that invalidated it. replay_scale
# rides along and *asserts* the >= 5x replay-engine speedup and the
# --jobs 1 vs --jobs 4 byte identity even at smoke iteration counts.
TESTKIT_BENCH_ITERS=1 TESTKIT_BENCH_WARMUP=0 cargo bench --offline -p bench

# The per-feature smokes (repro cluster/faults/serve) and per-golden
# guard invocations are subsumed by the scenario harness: one matrix
# pass runs every checked-in scenario — training, faults, serving, and
# the multi-chassis scale-out specs (cluster_scale32/64/128, up to 8
# chassis / 128 GPUs) — and one test binary guards every pinned golden
# (including cluster_scale32) through testkit::check_scenario_golden.
echo "== scenario-matrix smoke (every scenarios/*.json, 2 parallel workers) =="
cargo run --release --offline -p bench --bin repro -- scenario-matrix scenarios --jobs 2

# The preemption study exercised on its own: checkpoint preemption +
# migration defrag must replay cleanly through the CLI path too, not
# just inside the matrix fan-out.
echo "== priority-scenario smoke (cluster_priority, 2 workers) =="
cargo run --release --offline -p bench --bin repro -- scenario scenarios/cluster_priority.json --jobs 2

# The production-scale replay (10k jobs + 60 services, ~188k trace
# events) must stay interactive in release mode: the optimized engine
# replays it in well under a second, so a 60-second wall-clock budget
# only trips if the event loop regresses by more than an order of
# magnitude. POSIX sh, whole seconds — coarse on purpose.
echo "== production-scale replay under wall-clock budget (pai_magnitude, 2 workers) =="
pai_start=$(date +%s)
cargo run --release --offline -p bench --bin repro -- scenario scenarios/pai_magnitude.json --jobs 2
pai_elapsed=$(( $(date +%s) - pai_start ))
echo "pai_magnitude replayed in ${pai_elapsed}s (budget 60s)"
if [ "$pai_elapsed" -gt 60 ]; then
    echo "ERROR: pai_magnitude replay took ${pai_elapsed}s > 60s budget" >&2
    exit 1
fi

# The policy search exercised end to end at its frozen provenance:
# the full-budget search over the default portfolio must reproduce the
# checked-in tuned artifact byte-for-byte at 2 workers (worker-count
# independence is what makes this guard meaningful), and stay well
# inside an interactive wall-clock budget.
echo "== policy-search smoke + frozen-artifact guard (autotune, 2 workers) =="
at_start=$(date +%s)
cargo run --release --offline -p bench --bin repro -- \
    autotune scenarios/portfolio_default --budget 96 --seed 7 --jobs 2 \
    > target/tuned_ci.json
at_elapsed=$(( $(date +%s) - at_start ))
echo "autotune searched in ${at_elapsed}s (budget 60s)"
if [ "$at_elapsed" -gt 60 ]; then
    echo "ERROR: autotune took ${at_elapsed}s > 60s budget" >&2
    exit 1
fi
if ! cmp -s target/tuned_ci.json crates/bench/golden/tuned_default.json; then
    echo "ERROR: tuned artifact drifted from crates/bench/golden/tuned_default.json;" >&2
    echo "if the portfolio or policy engine changed intentionally, refreeze it:" >&2
    echo "  repro autotune scenarios/portfolio_default --budget 96 --seed 7" >&2
    diff target/tuned_ci.json crates/bench/golden/tuned_default.json >&2 || true
    exit 1
fi

echo "== byte-determinism guard: pinned scenario goldens still match =="
# Guards all six frozen goldens, including the pai_magnitude summary
# report that pins the optimized replay engine's semantics and the
# cluster_priority report that pins the preemption engine's decisions.
cargo test -q --offline -p bench --test scenario_goldens

echo "CI OK"
